"""The Sampler: candidate-set construction (Section 3.1).

    "The sampler samples a candidate set Su(t) for a user u at time t
    by aggregating three sets: (i) the current approximation of u's
    KNN, Nu, (ii) the current KNN of the users in Nu, and (iii) k
    random users.  Because these sets may contain duplicate entries
    (more and more as the KNN tables converge), the size of the sample
    is <= 2k + k^2."

The random component is what guarantees eventual convergence (it stops
the epidemic search from being trapped in a local optimum); the
two-hop component is what makes convergence *fast*.  Both claims are
checked empirically by ``benchmarks/bench_ablation_random_injection.py``.

The paper exposes sampling as a server-side extension point
(``interface Sampler`` in Table 1); we mirror that with the
:class:`CandidateSampler` protocol.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.core.tables import KnnTable
from repro.sim.randomness import make_rng, RngOrSeed


class CandidateSampler(Protocol):
    """Server-side sampling strategy (the paper's ``Sampler`` interface)."""

    def sample(self, user_id: int) -> set[int]:
        """Candidate user ids for the next KNN iteration of ``user_id``."""
        ...


class HyRecSampler:
    """The paper's sampler: ``Nu`` + ``KNN(Nu)`` + ``k`` random users."""

    def __init__(
        self,
        knn_table: KnnTable,
        user_registry: Sequence[int] | None = None,
        k: int = 10,
        rng: RngOrSeed = None,
        include_two_hop: bool = True,
        num_random: int | None = None,
    ) -> None:
        """
        Args:
            knn_table: The server's live KNN table.
            user_registry: Population to draw random users from.  The
                server keeps this in sync with its profile table; it
                can also be injected directly for testing.
            k: Neighborhood size.
            rng: Seed or generator for the random-user component.
            include_two_hop: Ablation switch -- ``False`` drops the
                ``KNN(Nu)`` component (slower convergence expected).
            num_random: Ablation switch -- number of random users to
                inject (default ``k``; ``0`` removes the component and
                the convergence guarantee with it).
        """
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        self.knn_table = knn_table
        self.k = k
        self.rng = make_rng(rng)
        self.include_two_hop = include_two_hop
        self.num_random = k if num_random is None else num_random
        if self.num_random < 0:
            raise ValueError("num_random cannot be negative")
        self._registry: list[int] = list(user_registry) if user_registry else []
        self._registered: set[int] = set(self._registry)
        self._size_history: list[tuple[float, int]] = []

    # --- registry maintenance ----------------------------------------------

    def register_user(self, user_id: int) -> None:
        """Make ``user_id`` eligible as a random candidate."""
        if user_id not in self._registered:
            self._registered.add(user_id)
            self._registry.append(user_id)

    @property
    def population(self) -> int:
        """Number of users the random component can draw from."""
        return len(self._registry)

    def registered_users(self) -> list[int]:
        """Snapshot of the registry (random-candidate population)."""
        return list(self._registry)

    def registry_view(self) -> Sequence[int]:
        """The live registry list, **without copying**.

        Callers must treat the returned sequence as read-only; it is
        the sampler's own backing list.  Bulk user registration reads
        this once per new user, so handing out a copy would turn
        loading ``n`` users into ~n^2/2 list-element copies.
        """
        return self._registry

    def is_registered(self, user_id: int) -> bool:
        """Whether ``user_id`` is already in the registry."""
        return user_id in self._registered

    # --- sampling ---------------------------------------------------------------

    def max_candidate_size(self) -> int:
        """The paper's ``2k + k^2`` upper bound for the default config."""
        return 2 * self.k + self.k * self.k

    def sample(self, user_id: int, now: float | None = None) -> set[int]:
        """Build the candidate set ``Su`` for ``user_id``.

        ``now`` (optional simulated time) tags the size sample recorded
        for Figure 5's convergence curves.
        """
        candidates: set[int] = set()

        neighbors = self.knn_table.neighbors_of(user_id)
        candidates.update(neighbors)

        if self.include_two_hop:
            for neighbor in neighbors:
                candidates.update(self.knn_table.neighbors_of(neighbor))

        candidates.update(self._draw_random_users(user_id, self.num_random))

        candidates.discard(user_id)
        if now is not None:
            self._size_history.append((now, len(candidates)))
        return candidates

    def _draw_random_users(self, user_id: int, count: int) -> list[int]:
        """Up to ``count`` distinct random users, never ``user_id``."""
        eligible = len(self._registry) - (1 if user_id in self._registered else 0)
        if eligible <= 0 or count == 0:
            return []
        if count >= eligible:
            return [uid for uid in self._registry if uid != user_id]
        drawn: list[int] = []
        seen: set[int] = {user_id}
        # Rejection sampling: the registry vastly exceeds `count` in
        # any realistic configuration, so this terminates quickly.
        attempts = 0
        max_attempts = 20 * count + 20
        while len(drawn) < count and attempts < max_attempts:
            attempts += 1
            candidate = self._registry[self.rng.randrange(len(self._registry))]
            if candidate not in seen:
                seen.add(candidate)
                drawn.append(candidate)
        if len(drawn) < count:
            remaining = [u for u in self._registry if u not in seen]
            self.rng.shuffle(remaining)
            drawn.extend(remaining[: count - len(drawn)])
        return drawn

    # --- Figure 5 instrumentation ---------------------------------------------

    @property
    def size_history(self) -> list[tuple[float, int]]:
        """(time, candidate-set size) samples recorded during replay."""
        return list(self._size_history)

    def clear_history(self) -> None:
        """Drop recorded size samples."""
        self._size_history.clear()
