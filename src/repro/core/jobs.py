"""Personalization jobs: the messages between server and widget.

A :class:`PersonalizationJob` is the payload of the server's response
to ``GET /online/?uid=...`` (Arrow 2 in Figure 1): the user's own
profile plus the profiles of every candidate, all under anonymous
tokens.  A :class:`JobResult` is what the widget sends back via
``GET /neighbors/?uid=...&id0=...`` (Arrow 3): the new KNN selection,
plus the recommendations it displayed (so the server can log them).

Both objects round-trip through JSON; the wire sizes of their encoded
forms are exactly what Figure 10 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass(frozen=True)
class PersonalizationJob:
    """One unit of work shipped to a browser."""

    user_token: str
    user_profile: dict[str, float]  # item token/id string -> binary value
    candidates: dict[str, dict[str, float]]  # user token -> profile payload
    k: int
    r: int
    metric: str = "cosine"

    def candidate_count(self) -> int:
        """Size of the candidate set carried by this job."""
        return len(self.candidates)

    def to_payload(self) -> dict[str, Any]:
        """JSON-ready dict (key names match the compactness of the
        paper's messages: short keys keep Figure 10 honest)."""
        return {
            "u": self.user_token,
            "p": self.user_profile,
            "c": self.candidates,
            "k": self.k,
            "r": self.r,
            "m": self.metric,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "PersonalizationJob":
        """Inverse of :meth:`to_payload`."""
        return cls(
            user_token=payload["u"],
            user_profile={k: float(v) for k, v in payload["p"].items()},
            candidates={
                token: {k: float(v) for k, v in profile.items()}
                for token, profile in payload["c"].items()
            },
            k=int(payload["k"]),
            r=int(payload["r"]),
            metric=payload.get("m", "cosine"),
        )


@dataclass(frozen=True)
class JobResult:
    """What the widget reports back after executing a job."""

    user_token: str
    neighbor_tokens: list[str]
    recommended_items: list[str]
    neighbor_scores: list[float] = field(default_factory=list)
    #: True when a cluster shard was down while this job was served
    #: under ``degraded_reads``: the neighbors/recommendations came
    #: from the surviving shards only.  Exact results (the default and
    #: the overwhelmingly common case) keep the flag False.
    degraded: bool = False

    def to_payload(self) -> dict[str, Any]:
        """JSON-ready dict for the ``/neighbors/`` update call.

        ``degraded`` travels only when set: exact results stay
        byte-identical to the pre-supervision wire format, keeping the
        Figure 10 message-size measurements comparable.
        """
        payload = {
            "u": self.user_token,
            "n": list(self.neighbor_tokens),
            "r": list(self.recommended_items),
            "s": list(self.neighbor_scores),
        }
        if self.degraded:
            payload["d"] = True
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "JobResult":
        """Inverse of :meth:`to_payload`."""
        return cls(
            user_token=payload["u"],
            neighbor_tokens=list(payload["n"]),
            recommended_items=list(payload["r"]),
            neighbor_scores=[float(s) for s in payload.get("s", [])],
            degraded=bool(payload.get("d", False)),
        )
