"""User profiles: the ``<user, item, value>`` opinion sets of Section 2.1.

A profile collects a user's binary opinions (1.0 = liked, 0.0 =
disliked) with the timestamp of each rating.  The liked-item set is
maintained incrementally because every similarity computation needs it
and profiles are read far more often than they are written.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping


class Profile:
    """One user's rating history.

    Values are binary (the paper binarizes all workloads up front; see
    :mod:`repro.datasets.binarize`).  Re-rating an item overwrites the
    previous opinion, matching how a user changing their mind works on
    a real site.
    """

    __slots__ = (
        "user_id",
        "_ratings",
        "_liked",
        "_payload_cache",
        "_liked_frozen",
        "_disliked_frozen",
        "_fragment_cache",
        "_deflated_cache",
    )

    def __init__(self, user_id: int) -> None:
        self.user_id = user_id
        self._ratings: dict[int, tuple[float, float]] = {}  # item -> (value, ts)
        self._liked: set[int] = set()
        self._payload_cache: dict[str, float] | None = None
        self._liked_frozen: frozenset[int] | None = None
        self._disliked_frozen: frozenset[int] | None = None
        self._fragment_cache: bytes | None = None
        self._deflated_cache: bytes | None = None

    def __len__(self) -> int:
        return len(self._ratings)

    def __contains__(self, item: int) -> bool:
        return item in self._ratings

    def __iter__(self) -> Iterator[int]:
        return iter(self._ratings)

    @property
    def size(self) -> int:
        """Number of rated items (the paper's "profile size")."""
        return len(self._ratings)

    def add(self, item: int, value: float, timestamp: float = 0.0) -> None:
        """Record (or overwrite) the opinion on ``item``."""
        if value not in (0.0, 1.0):
            raise ValueError(
                f"profiles store binary opinions; got value={value!r} "
                "(binarize the trace first)"
            )
        self._ratings[item] = (value, timestamp)
        if value == 1.0:
            self._liked.add(item)
        else:
            self._liked.discard(item)
        self._payload_cache = None
        self._liked_frozen = None
        self._disliked_frozen = None
        self._fragment_cache = None
        self._deflated_cache = None

    def value_of(self, item: int) -> float | None:
        """The stored opinion on ``item`` or ``None`` if unrated."""
        entry = self._ratings.get(item)
        return entry[0] if entry is not None else None

    def liked_items(self) -> frozenset[int]:
        """Items this user liked (the vector used by cosine similarity).

        Cached between writes: similarity engines call this once per
        candidate appearance, which is hundreds of times per update in
        a busy server.
        """
        if self._liked_frozen is None:
            self._liked_frozen = frozenset(self._liked)
        return self._liked_frozen

    def disliked_items(self) -> frozenset[int]:
        """Items this user explicitly disliked (cached between writes)."""
        if self._disliked_frozen is None:
            self._disliked_frozen = frozenset(self._ratings) - self._liked
        return self._disliked_frozen

    def rated_items(self) -> frozenset[int]:
        """All items with any opinion (Algorithm 2 excludes these)."""
        return frozenset(self._ratings)

    def to_payload(self) -> dict[str, Any]:
        """JSON-ready form: ``{item-id-string: value}``.

        Timestamps never go on the wire -- the widget does not need
        them, and omitting them keeps Figure 10's message sizes honest.

        The payload is cached until the next write: a profile is
        serialized into every candidate set it appears in, so the
        orchestrator would otherwise rebuild the same dict hundreds of
        times between two ratings.  Callers must treat the returned
        dict as read-only.
        """
        if self._payload_cache is None:
            self._payload_cache = {
                str(item): value for item, (value, _) in self._ratings.items()
            }
        return self._payload_cache

    def json_fragment(self) -> bytes:
        """This profile's wire form as pre-encoded JSON bytes.

        The personalization orchestrator embeds a profile into every
        candidate set it ships; caching the encoded bytes turns job
        serialization into a byte join (the Jackson-level optimization
        a production server would apply).  Matches
        ``encode_json(self.to_payload())`` byte for byte.
        """
        if self._fragment_cache is None:
            from repro.messages import encode_json

            self._fragment_cache = encode_json(self.to_payload())
        return self._fragment_cache

    def deflated_fragment(self) -> bytes:
        """Sync-flushed deflate segment of :meth:`json_fragment`.

        Cached between writes so the server can assemble gzipped
        responses by splicing byte segments instead of re-compressing
        every candidate profile on every request (see
        :class:`repro.messages.FragmentGzipWriter`).
        """
        if self._deflated_cache is None:
            from repro.messages import deflate_segment

            self._deflated_cache = deflate_segment(self.json_fragment())
        return self._deflated_cache

    @classmethod
    def from_payload(cls, user_id: int, payload: Mapping[str, float]) -> "Profile":
        """Rebuild a profile from its wire form."""
        profile = cls(user_id)
        for item_str, value in payload.items():
            profile.add(int(item_str), float(value))
        return profile

    def copy(self) -> "Profile":
        """Deep copy (used by offline baselines taking snapshots)."""
        duplicate = Profile(self.user_id)
        duplicate._ratings = dict(self._ratings)
        duplicate._liked = set(self._liked)
        return duplicate

    def __repr__(self) -> str:
        return (
            f"Profile(user={self.user_id}, size={self.size}, "
            f"liked={len(self._liked)})"
        )
