"""The server's two global data structures (Section 2.2 / 3.1).

    "The server maintains two global data structures: A Profile Table,
    recording the profiles of all the users in the system and the KNN
    Table containing the k nearest neighbors of each user."
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.core.profiles import Profile

#: Observer signature for profile writes:
#: ``(user_id, item, value, previous_value_or_None)``.
WriteListener = Callable[[int, int, float, "float | None"], None]


class ProfileTable:
    """User id -> :class:`Profile`, with lazy creation."""

    def __init__(self) -> None:
        self._profiles: dict[int, Profile] = {}
        self._listeners: list[WriteListener] = []

    def add_listener(self, listener: WriteListener) -> None:
        """Subscribe to every write that goes through :meth:`record`.

        This is how incrementally-maintained read structures (e.g. the
        vectorized engine's :class:`~repro.engine.LikedMatrix`) stay in
        sync without polling: the server funnels all rating writes
        through :meth:`record`.
        """
        self._listeners.append(listener)

    def remove_listener(self, listener: WriteListener) -> None:
        """Unsubscribe a write listener (no-op if it is not subscribed).

        Structures with an explicit shutdown (the process executor's
        write router) must detach here, or writes recorded after their
        teardown would still be delivered to them.
        """
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def __len__(self) -> int:
        return len(self._profiles)

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._profiles

    def __iter__(self) -> Iterator[int]:
        return iter(self._profiles)

    def users(self) -> list[int]:
        """All registered user ids."""
        return list(self._profiles)

    def get(self, user_id: int) -> Profile:
        """The profile of ``user_id``; raises ``KeyError`` if unknown."""
        return self._profiles[user_id]

    def get_or_create(self, user_id: int) -> Profile:
        """The profile of ``user_id``, registering the user if new."""
        profile = self._profiles.get(user_id)
        if profile is None:
            profile = Profile(user_id)
            self._profiles[user_id] = profile
        return profile

    def remove(self, user_id: int) -> None:
        """Forget ``user_id`` entirely (no-op for unknown users).

        This is *not* a write: listeners are not notified.  It exists
        for shard-local tables handing a placement bucket's users off
        to another shard -- the profiles leave with the handoff replay,
        so keeping them here would double-count the users.  Derived
        read structures over this table must be invalidated by the
        caller (e.g. ``LikedMatrix.refresh``).
        """
        self._profiles.pop(user_id, None)

    def record(
        self, user_id: int, item: int, value: float, timestamp: float = 0.0
    ) -> Profile:
        """Add one rating, creating the user on first sight."""
        profile = self.get_or_create(user_id)
        if self._listeners:
            previous = profile.value_of(item)
            profile.add(item, value, timestamp)
            for listener in self._listeners:
                listener(user_id, item, value, previous)
        else:
            profile.add(item, value, timestamp)
        return profile

    def liked_sets(self) -> dict[int, frozenset[int]]:
        """Snapshot of every user's liked-item set.

        This is what the offline baselines feed to exact KNN; taking a
        snapshot decouples their periodic computation from concurrent
        profile updates, like the paper's back-end does.
        """
        return {uid: p.liked_items() for uid, p in self._profiles.items()}

    def snapshot(self) -> "ProfileTable":
        """Deep copy of the whole table."""
        duplicate = ProfileTable()
        duplicate._profiles = {uid: p.copy() for uid, p in self._profiles.items()}
        return duplicate


class KnnTable:
    """User id -> current KNN approximation (ordered, best first)."""

    def __init__(self) -> None:
        self._neighbors: dict[int, list[int]] = {}

    def __len__(self) -> int:
        return len(self._neighbors)

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._neighbors

    def neighbors_of(self, user_id: int) -> list[int]:
        """Current neighbor list (empty for unknown users)."""
        return list(self._neighbors.get(user_id, ()))

    def update(self, user_id: int, neighbors: Sequence[int]) -> None:
        """Replace the user's neighborhood with a fresh KNN iteration.

        Self-loops are rejected: the sampler and Algorithm 1 both
        exclude the user, so one showing up here indicates a protocol
        bug (or a malicious client -- the server re-validates).
        """
        cleaned: list[int] = []
        seen: set[int] = set()
        for neighbor in neighbors:
            if neighbor == user_id:
                raise ValueError(f"user {user_id} cannot be her own neighbor")
            if neighbor in seen:
                continue
            seen.add(neighbor)
            cleaned.append(neighbor)
        self._neighbors[user_id] = cleaned

    def as_dict(self) -> dict[int, list[int]]:
        """Copy of the full table (uid -> neighbor list)."""
        return {uid: list(nbrs) for uid, nbrs in self._neighbors.items()}

    def users(self) -> list[int]:
        """Users with a recorded neighborhood."""
        return list(self._neighbors)
