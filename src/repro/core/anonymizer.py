"""Anonymous user/item mapping (Section 3.1, privacy paragraph).

    "HyRec hides the user/profile association through an anonymous
    mapping that associates identifiers with users and items.  HyRec
    periodically changes these identifiers to prevent curious users
    from determining which user corresponds to which profile in the
    received candidate set."

Tokens are random hex strings drawn from a seeded generator; a
``reshuffle()`` bumps the epoch and invalidates every outstanding
token.  Tokens embed the epoch so that resolving a stale token fails
loudly instead of silently mapping to the wrong user.
"""

from __future__ import annotations

from repro.sim.randomness import derive_rng


class StaleTokenError(KeyError):
    """A token from a previous epoch was presented after a reshuffle."""


class AnonymousMapping:
    """Bidirectional id <-> token maps for users and items."""

    def __init__(self, seed: int = 0, token_bytes: int = 6) -> None:
        if token_bytes < 2:
            raise ValueError("token_bytes must be at least 2")
        self._seed = seed
        self._token_bytes = token_bytes
        self.epoch = 0
        self._rng = derive_rng(seed, "anonymizer:epoch:0")
        self._user_tokens: dict[int, str] = {}
        self._token_users: dict[str, int] = {}
        self._item_tokens: dict[int, str] = {}
        self._token_items: dict[str, int] = {}

    # --- token generation -------------------------------------------------

    def _fresh_token(self, prefix: str, taken: dict[str, int]) -> str:
        while True:
            body = self._rng.getrandbits(self._token_bytes * 8)
            token = f"{prefix}{self.epoch}_{body:0{self._token_bytes * 2}x}"
            if token not in taken:
                return token

    # --- users -------------------------------------------------------------

    def token_for_user(self, user_id: int) -> str:
        """Opaque token for ``user_id``, stable within the epoch."""
        token = self._user_tokens.get(user_id)
        if token is None:
            token = self._fresh_token("u", self._token_users)
            self._user_tokens[user_id] = token
            self._token_users[token] = user_id
        return token

    def resolve_user(self, token: str) -> int:
        """Real user id behind ``token``.

        Raises :class:`StaleTokenError` for tokens minted before the
        last reshuffle and plain ``KeyError`` for garbage.
        """
        try:
            return self._token_users[token]
        except KeyError:
            if self._looks_stale(token, "u"):
                raise StaleTokenError(
                    f"user token {token!r} predates epoch {self.epoch}"
                ) from None
            raise

    # --- items ---------------------------------------------------------------

    def token_for_item(self, item_id: int) -> str:
        """Opaque token for ``item_id``, stable within the epoch."""
        token = self._item_tokens.get(item_id)
        if token is None:
            token = self._fresh_token("i", self._token_items)
            self._item_tokens[item_id] = token
            self._token_items[token] = item_id
        return token

    def resolve_item(self, token: str) -> int:
        """Real item id behind ``token`` (stale tokens raise)."""
        try:
            return self._token_items[token]
        except KeyError:
            if self._looks_stale(token, "i"):
                raise StaleTokenError(
                    f"item token {token!r} predates epoch {self.epoch}"
                ) from None
            raise

    # --- lifecycle ------------------------------------------------------------

    def reshuffle(self) -> None:
        """Start a new epoch: all existing tokens become invalid."""
        self.epoch += 1
        self._rng = derive_rng(self._seed, f"anonymizer:epoch:{self.epoch}")
        self._user_tokens.clear()
        self._token_users.clear()
        self._item_tokens.clear()
        self._token_items.clear()

    def _looks_stale(self, token: str, prefix: str) -> bool:
        """Heuristically detect a token from an earlier epoch."""
        if not token.startswith(prefix):
            return False
        head, _, _ = token.partition("_")
        digits = head[len(prefix):]
        return digits.isdigit() and int(digits) < self.epoch

    def __repr__(self) -> str:
        return (
            f"AnonymousMapping(epoch={self.epoch}, "
            f"users={len(self._user_tokens)}, items={len(self._item_tokens)})"
        )
