"""End-to-end HyRec: server + widgets + trace replay.

:class:`HyRecSystem` wires a :class:`~repro.core.server.HyRecServer`
to a stateless :class:`~repro.core.client.HyRecWidget` and drives the
full interaction of Figure 1 (bottom):

1. the user rates an item / opens a page -> the server updates her
   profile and builds a personalization job (Arrows 1-2),
2. the widget computes recommendations and a KNN iteration,
3. the result flows back and the server updates the KNN table
   (Arrow 3).

:meth:`HyRecSystem.replay` replays a rating trace exactly as Section
5.2 describes: "When a user rates an item in the workload, the client
sends a request to the server, triggering the computation of
recommendations."  The optional ``inter_request_bound`` reproduces the
``IR=7`` variant of Figure 3, where every user issues a request at
least once per simulated week while she exists.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # imported lazily at runtime (cluster imports core back)
    from repro.cluster import BatchScheduler

from repro.core.client import HyRecWidget
from repro.core.config import HyRecConfig
from repro.core.jobs import JobResult, PersonalizationJob
from repro.core.server import HyRecServer
from repro.datasets.schema import Trace
from repro.engine.jobs import EngineJob
from repro.engine.widget import VectorizedWidget


@dataclass(frozen=True)
class RequestOutcome:
    """Everything produced by one full client-server round trip."""

    user_id: int
    timestamp: float
    job: PersonalizationJob | EngineJob
    result: JobResult
    recommendations: list[int]  # resolved to real item ids


#: Callback invoked after each round trip during replay.
RequestObserver = Callable[[RequestOutcome], None]


class HyRecSystem:
    """A complete HyRec deployment for simulation studies."""

    def __init__(self, config: HyRecConfig | None = None, seed: int = 0) -> None:
        self.config = config if config is not None else HyRecConfig()
        self.server = HyRecServer(self.config, seed=seed)
        self.widget: HyRecWidget | VectorizedWidget = (
            VectorizedWidget()
            if self.config.engine in ("vectorized", "sharded")
            else HyRecWidget()
        )
        #: Request-coalescing window in front of the cluster
        #: coordinator; only materialized for ``engine="sharded"``.
        self.scheduler: "BatchScheduler | None" = None
        if self.server.cluster is not None:
            from repro.cluster import BatchScheduler

            self.scheduler = BatchScheduler(
                self.server.cluster, batch_window=self.config.batch_window
            )
            if self.server.rebalancer is not None:
                # The rebalancer drains this window before migrating a
                # bucket, so no admitted-but-undispatched job ever
                # spans a routing-epoch change.
                self.server.rebalancer.scheduler = self.scheduler
        self.requests_served = 0

    def _use_fast_path(self) -> bool:
        """Whether the in-process integer fast path applies.

        The fast path needs an array engine (vectorized or sharded), a
        built-in metric with no custom widget hooks, and real item ids
        on the wire (item anonymization only exists on serialized
        payloads).
        """
        return (
            (
                self.server.liked_matrix is not None
                or self.server.cluster is not None
            )
            and not self.config.anonymize_items
            and isinstance(self.widget, VectorizedWidget)
            and self.widget.can_vectorize(self.config.metric)
        )

    def _execute_engine_job(self, job: EngineJob) -> JobResult:
        """Run one fast-path job on whichever array back-end exists."""
        if self.server.cluster is not None:
            return self.server.cluster.process_engine_job(job)
        assert isinstance(self.widget, VectorizedWidget)
        assert self.server.liked_matrix is not None
        return self.widget.process_engine_job(job, self.server.liked_matrix)

    def close(self) -> None:
        """Release engine resources; no-op except on the sharded engine.

        On ``executor="process"`` this is the clean end of the worker
        lifecycle that construction began (spawn + warm-start replay):
        every worker process receives a shutdown frame and is joined.
        Use the system as a context manager to make it automatic.
        """
        self.server.close()

    def __enter__(self) -> "HyRecSystem":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # --- single interactions ----------------------------------------------------

    def record_rating(
        self, user_id: int, item: int, value: float, timestamp: float = 0.0
    ) -> None:
        """Forward one rating to the server's Profile Table."""
        self.server.record_rating(user_id, item, value, timestamp)

    def request(self, user_id: int, now: float = 0.0) -> RequestOutcome:
        """One full personalization round trip for ``user_id``.

        The job is rendered to wire bytes (and metered) exactly as the
        HTTP deployment would, so replay bandwidth numbers are real.
        When tracing is on, the whole round trip runs under a root
        ``request`` span -- the job carries its context down through
        the scheduler and shard frames, so worker score spans stitch
        into the same trace -- and every request feeds the latency
        histogram (plus the slow-request log past its threshold).
        """
        obs = self.server.obs
        start_ns = time.perf_counter_ns()
        span = obs.tracer.begin("request", user=user_id)
        job: PersonalizationJob | EngineJob
        with obs.tracer.activate(span):
            if self._use_fast_path():
                job = self.server.handle_engine_request(user_id, now=now)
                self.server.render_engine_response(job)
                result = self._execute_engine_job(job)
            else:
                job = self.server.handle_online_request(user_id, now=now)
                self.server.render_online_response(job)
                result = self.widget.process_job(job)
            with obs.tracer.span("respond"):
                recommendations = self.server.handle_knn_update(user_id, result)
        span.finish()
        obs.note_request(user_id, (time.perf_counter_ns() - start_ns) / 1e9)
        self.requests_served += 1
        return RequestOutcome(
            user_id=user_id,
            timestamp=now,
            job=job,
            result=result,
            recommendations=recommendations,
        )

    def recommend(self, user_id: int, n: int | None = None) -> list[int]:
        """Convenience API: the top-``n`` recommendations for a user."""
        outcome = self.request(user_id)
        if n is None:
            return outcome.recommendations
        return outcome.recommendations[:n]

    def request_batch(
        self, user_ids: list[int], now: float = 0.0
    ) -> list[RequestOutcome]:
        """Serve a window of *concurrent* requests.

        Concurrency semantics: every job is built against the table
        state at admission (none of the batch's KNN updates are
        visible to its own sampling, exactly as simultaneous requests
        against one server would see), then all jobs execute, then the
        KNN updates apply in submission order.  On the sharded engine
        the jobs flow through the :class:`~repro.cluster.BatchScheduler`
        and execute as one batched kernel invocation per shard per
        window; on the other engines they execute one by one.  For the
        same admission state, per-job results are identical on every
        engine and batch size.
        """
        obs = self.server.obs
        jobs: list[PersonalizationJob | EngineJob] = []
        # One root span per member of the window, begun at admission
        # (that is when the user's request "arrived"); each stays open
        # across the shared dispatch so schedule/batch spans can parent
        # under it, and closes after its own KNN update below.
        spans = []
        starts_ns: list[int] = []
        fast = self._use_fast_path()
        for user_id in user_ids:
            starts_ns.append(time.perf_counter_ns())
            span = obs.tracer.begin("request", user=user_id)
            spans.append(span)
            with obs.tracer.activate(span):
                if fast:
                    job: PersonalizationJob | EngineJob = (
                        self.server.handle_engine_request(user_id, now=now)
                    )
                    self.server.render_engine_response(job)
                else:
                    job = self.server.handle_online_request(user_id, now=now)
                    self.server.render_online_response(job)
            jobs.append(job)

        if fast and self.scheduler is not None:
            results = self.scheduler.run(jobs)  # type: ignore[arg-type]
        elif fast:
            results = [self._execute_engine_job(job) for job in jobs]
        else:
            assert isinstance(self.widget, (HyRecWidget, VectorizedWidget))
            results = [self.widget.process_job(job) for job in jobs]

        outcomes: list[RequestOutcome] = []
        for user_id, job, result, span, start_ns in zip(
            user_ids, jobs, results, spans, starts_ns
        ):
            # Explicit parent: the thread-local stack belongs to the
            # dispatch loop, not to this request's admission context.
            with obs.tracer.span("respond", parent=span.ctx):
                recommendations = self.server.handle_knn_update(user_id, result)
            span.finish()
            obs.note_request(user_id, (time.perf_counter_ns() - start_ns) / 1e9)
            self.requests_served += 1
            outcomes.append(
                RequestOutcome(
                    user_id=user_id,
                    timestamp=now,
                    job=job,
                    result=result,
                    recommendations=recommendations,
                )
            )
        return outcomes

    # --- trace replay ---------------------------------------------------------------

    def replay(
        self,
        trace: Trace,
        on_request: Optional[RequestObserver] = None,
        inter_request_bound: Optional[float] = None,
        request_on_rating: bool = True,
    ) -> int:
        """Replay ``trace`` through the full system; return requests served.

        Args:
            trace: A binarized, time-sorted rating trace.
            on_request: Observer called after every round trip (metric
                probes hook in here).
            inter_request_bound: If set (seconds), every user issues a
                request at least this often after her first activity --
                the ``IR=7`` (one week) variant of Figure 3.
            request_on_rating: If ``False``, ratings only update
                profiles and *only* the synthetic inter-request
                activity triggers personalization (used by ablations).
        """
        served_before = self.requests_served
        due_heap: list[tuple[float, int]] = []  # (due time, user)
        last_request: dict[int, float] = {}

        def fire(user_id: int, now: float) -> None:
            outcome = self.request(user_id, now=now)
            last_request[user_id] = now
            if inter_request_bound is not None:
                heapq.heappush(due_heap, (now + inter_request_bound, user_id))
            if on_request is not None:
                on_request(outcome)

        def run_due(now: float) -> None:
            while due_heap and due_heap[0][0] <= now:
                due_time, user_id = heapq.heappop(due_heap)
                # Skip stale entries: the user requested more recently.
                expected_due = last_request.get(user_id, 0.0) + (
                    inter_request_bound or 0.0
                )
                if due_time < expected_due:
                    continue
                fire(user_id, due_time)

        for rating in trace:
            if inter_request_bound is not None:
                run_due(rating.timestamp)
            self.record_rating(
                rating.user, rating.item, rating.value, rating.timestamp
            )
            if request_on_rating:
                fire(rating.user, rating.timestamp)
            elif inter_request_bound is not None and rating.user not in last_request:
                # First activity starts the user's request schedule.
                last_request[rating.user] = rating.timestamp
                heapq.heappush(
                    due_heap, (rating.timestamp + inter_request_bound, rating.user)
                )
        return self.requests_served - served_before
