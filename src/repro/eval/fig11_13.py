"""Figures 11-13: the widget on client devices.

These are the client-side experiments the paper runs on a physical
laptop and smartphone under synthetic CPU load (``stress`` / antutu).
We replace the hardware with the calibrated device models of
:mod:`repro.sim.devices` but keep the *workload* real: every modeled
time is driven by the exact operation count of a real personalization
job built by :func:`repro.core.client.make_job`.

* Figure 11 -- progress of a monitoring loop while a co-application
  runs, versus background CPU load.  The interference model charges
  each co-application its CPU duty cycle on the laptop's core budget.
* Figure 12 -- widget execution time at profile size 100 versus CPU
  load, laptop versus smartphone.
* Figure 13 -- widget execution time versus profile size for
  k in {10, 20} on both devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.client import HyRecWidget, make_job
from repro.core.jobs import PersonalizationJob
from repro.eval.common import format_rows
from repro.sim.devices import Device, LAPTOP, SMARTPHONE
from repro.sim.randomness import derive_rng


def synth_job(
    profile_size: int, k: int = 10, catalog: int = 4000, seed: int = 0
) -> PersonalizationJob:
    """A worst-case personalization job with exact profile sizes.

    The candidate set is at its ``2k + k^2`` bound and every profile
    (the user's and each candidate's) holds exactly ``profile_size``
    binary opinions -- the configuration Figures 12-13 sweep.
    """
    rng = derive_rng(seed, f"job:{profile_size}:{k}")
    candidate_count = 2 * k + k * k

    def profile() -> dict[str, float]:
        items = rng.sample(range(catalog), min(profile_size, catalog))
        return {str(item): 1.0 if rng.random() < 0.8 else 0.0 for item in items}

    return make_job(
        user_token="u_self",
        user_profile=profile(),
        candidates={f"u_{index}": profile() for index in range(candidate_count)},
        k=k,
        r=10,
    )


# --- Figure 11 ----------------------------------------------------------------


#: CPU duty cycle charged by each co-application in the Figure 11
#: interference model (fraction of the laptop's total core budget).
COAPP_INTERFERENCE: dict[str, float] = {
    "Baseline": 0.0,
    "HyRec operation": 0.12,
    "Display operation": 0.13,
    "Decentralized": 0.07,
}

#: Progress of the monitor loop at zero load, in loop iterations
#: (calibrated to the paper's ~185M over the measurement window).
MONITOR_BASE_LOOPS: float = 185e6

#: Fractional slowdown of the monitor between 0% and 100% stress load
#: (the paper's baseline falls from ~185M to ~145M: ~22%).
STRESS_SLOPE: float = 0.22


@dataclass
class Fig11Result:
    """Monitor-loop progress (millions) per co-app per CPU load."""

    loads: list[float]
    progress: dict[str, list[float]] = field(default_factory=dict)

    def format_report(self) -> str:
        headers = ["CPU load"] + list(self.progress)
        rows = []
        for index, load in enumerate(self.loads):
            row = [f"{load:.0%}"]
            for name in self.progress:
                row.append(f"{self.progress[name][index] / 1e6:.0f}M")
            rows.append(row)
        return format_rows(
            headers,
            rows,
            title="Figure 11 -- monitor progress vs CPU load per co-application",
        )


def run_fig11(
    loads: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
) -> Fig11Result:
    """Interference of each co-application with a monitoring loop."""
    result = Fig11Result(loads=list(loads))
    for name, interference in COAPP_INTERFERENCE.items():
        series = []
        for load in loads:
            progress = (
                MONITOR_BASE_LOOPS * (1.0 - STRESS_SLOPE * load) * (1.0 - interference)
            )
            series.append(progress)
        result.progress[name] = series
    return result


# --- Figure 12 --------------------------------------------------------------------


@dataclass
class Fig12Result:
    """Widget time (ms) vs CPU load, per device, at profile size 100."""

    loads: list[float]
    profile_size: int
    times_ms: dict[str, list[float]] = field(default_factory=dict)

    def format_report(self) -> str:
        headers = ["CPU load"] + list(self.times_ms)
        rows = []
        for index, load in enumerate(self.loads):
            row = [f"{load:.0%}"]
            for name in self.times_ms:
                row.append(f"{self.times_ms[name][index]:.1f}ms")
            rows.append(row)
        return format_rows(
            headers,
            rows,
            title=(
                f"Figure 12 -- widget time vs client CPU load "
                f"(profile size {self.profile_size})"
            ),
        )


def run_fig12(
    loads: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
    profile_size: int = 100,
    k: int = 10,
    seed: int = 0,
) -> Fig12Result:
    """Sweep CPU load for the laptop and smartphone models."""
    job = synth_job(profile_size, k=k, seed=seed)
    widget = HyRecWidget()
    ops = widget.op_count(job)
    result = Fig12Result(loads=list(loads), profile_size=profile_size)
    for spec in (SMARTPHONE, LAPTOP):
        series = []
        for load in loads:
            device = Device(spec, load=load)
            series.append(device.task_time(ops) * 1e3)
        result.times_ms[spec.name] = series
    return result


# --- Figure 13 ---------------------------------------------------------------------


@dataclass
class Fig13Result:
    """Widget time (ms) vs profile size per (device, k)."""

    profile_sizes: list[int]
    times_ms: dict[str, dict[int, float]] = field(default_factory=dict)

    def growth_factor(self, name: str) -> float:
        """Time ratio between the largest and smallest profile size."""
        first = self.times_ms[name][self.profile_sizes[0]]
        last = self.times_ms[name][self.profile_sizes[-1]]
        return last / first if first > 0 else 0.0

    def format_report(self) -> str:
        headers = ["System"] + [f"ps={ps}" for ps in self.profile_sizes] + ["growth"]
        rows = []
        for name, by_ps in self.times_ms.items():
            rows.append(
                [name]
                + [f"{by_ps[ps]:.1f}ms" for ps in self.profile_sizes]
                + [f"x{self.growth_factor(name):.1f}"]
            )
        return format_rows(
            headers,
            rows,
            title="Figure 13 -- widget time vs profile size",
        )


def run_fig13(
    profile_sizes: tuple[int, ...] = (10, 50, 100, 250, 500),
    ks: tuple[int, ...] = (10, 20),
    seed: int = 0,
) -> Fig13Result:
    """Sweep profile size for both devices and both k values."""
    result = Fig13Result(profile_sizes=list(profile_sizes))
    widget = HyRecWidget()
    for spec in (SMARTPHONE, LAPTOP):
        for k in ks:
            name = f"{spec.name} k={k}"
            result.times_ms[name] = {}
            for ps in profile_sizes:
                job = synth_job(ps, k=k, seed=seed)
                ops = widget.op_count(job)
                device = Device(spec)
                result.times_ms[name][ps] = device.task_time(ops) * 1e3
    return result
