"""Shared helpers for the experiment modules."""

from __future__ import annotations

from typing import Mapping

from repro.core.tables import ProfileTable
from repro.datasets.schema import Trace


def liked_sets_of_trace(trace: Trace) -> dict[int, frozenset[int]]:
    """Final liked-item set per user after replaying a whole trace.

    A later dislike of an item overrides an earlier like (profiles are
    overwrite-on-rerate), matching :class:`repro.core.profiles.Profile`.
    """
    state: dict[int, dict[int, float]] = {}
    for rating in trace:
        state.setdefault(rating.user, {})[rating.item] = rating.value
    return {
        user: frozenset(item for item, value in items.items() if value == 1.0)
        for user, items in state.items()
    }


def liked_sets_of_profiles(profiles: ProfileTable) -> dict[int, frozenset[int]]:
    """Snapshot of the liked sets inside a live profile table."""
    return profiles.liked_sets()


def format_rows(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Monospace table formatting used by every ``format_report``."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def series_to_rows(
    series: Mapping[str, list[tuple[float, float]]],
    x_label: str,
    y_format: str = "{:.4f}",
    x_format: str = "{:.1f}",
) -> tuple[list[str], list[list[str]]]:
    """Align multiple named (x, y) series on their union of x values."""
    all_x = sorted({x for points in series.values() for x, _ in points})
    lookup = {
        name: {x: y for x, y in points} for name, points in series.items()
    }
    headers = [x_label] + list(series)
    rows = []
    for x in all_x:
        row = [x_format.format(x)]
        for name in series:
            y = lookup[name].get(x)
            row.append(y_format.format(y) if y is not None else "-")
        rows.append(row)
    return headers, rows
