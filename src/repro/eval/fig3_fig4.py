"""Figures 3 and 4: KNN selection quality on ML1.

Figure 3 replays the trace through HyRec (k=10; k=10 with a one-week
inter-request bound; k=20) and through the Offline-Ideal weekly
baseline, probing the *average view similarity* of each system's KNN
table on a fixed time grid.  The ideal upper bound is probed on the
same grid.

Figure 4 takes the k=10 replay's end state and reports, per user, the
achieved fraction of her ideal view similarity against her profile
size (= number of HyRec iterations she triggered, since every rating
is a request).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.offline_ideal import CentralizedOfflineSystem
from repro.core.config import HyRecConfig
from repro.core.system import HyRecSystem
from repro.datasets import load_dataset
from repro.datasets.schema import Trace
from repro.eval.common import format_rows, series_to_rows
from repro.metrics.view_similarity import (
    ideal_view_similarity,
    ideal_view_similarity_per_user,
    view_similarity_of_table,
    view_similarity_per_user,
)
from repro.sim.clock import DAY, WEEK

Series = list[tuple[float, float]]  # (time in days, view similarity)


@dataclass
class Fig3Result:
    """Average view similarity over time, one series per system."""

    scale: float
    series: dict[str, Series] = field(default_factory=dict)

    def final_gap_to_ideal(self, name: str) -> float:
        """Relative gap of a series' last point to the ideal's."""
        ideal = self.series["Ideal upper bound"][-1][1]
        achieved = self.series[name][-1][1]
        if ideal <= 0:
            return 0.0
        return 1.0 - achieved / ideal

    def format_report(self) -> str:
        headers, rows = series_to_rows(self.series, "day")
        return format_rows(
            headers,
            rows,
            title=(
                f"Figure 3 -- average view similarity over time "
                f"(ML1, scale={self.scale})"
            ),
        )


@dataclass
class Fig4Result:
    """Per-user (profile size, % of ideal view similarity) points."""

    scale: float
    points: list[tuple[int, float]] = field(default_factory=list)

    def fraction_above(self, threshold: float) -> float:
        """Share of users at or above a view-similarity ratio."""
        if not self.points:
            return 0.0
        hits = sum(1 for _, ratio in self.points if ratio >= threshold)
        return hits / len(self.points)

    def format_report(self) -> str:
        buckets: dict[str, list[float]] = {}
        edges = [(0, 10), (10, 25), (25, 50), (50, 100), (100, 250), (250, 10**9)]
        for size, ratio in self.points:
            for low, high in edges:
                if low <= size < high:
                    label = f"{low}-{high if high < 10**9 else 'inf'}"
                    buckets.setdefault(label, []).append(ratio)
                    break
        rows = []
        for (low, high) in edges:
            label = f"{low}-{high if high < 10**9 else 'inf'}"
            values = buckets.get(label, [])
            if values:
                rows.append(
                    [
                        label,
                        f"{len(values)}",
                        f"{100 * sum(values) / len(values):.1f}%",
                    ]
                )
        rows.append(
            ["ALL >= 70%", "", f"{100 * self.fraction_above(0.7):.1f}% of users"]
        )
        return format_rows(
            ["profile size", "users", "mean % of ideal"],
            rows,
            title=f"Figure 4 -- KNN quality vs user activity (scale={self.scale})",
        )


def _probe_times(trace: Trace, probes: int) -> list[float]:
    duration = trace.duration
    start = trace.ratings[0].timestamp if len(trace) else 0.0
    step = duration / probes if probes else duration
    return [start + step * (i + 1) for i in range(probes)]


def run_fig3(
    scale: float = 0.15,
    seed: int = 0,
    probes: int = 12,
    dataset: str = "ML1",
) -> Fig3Result:
    """Replay the four systems of Figure 3 on a probe grid."""
    trace = load_dataset(dataset, scale=scale, seed=seed)
    probe_times = _probe_times(trace, probes)
    result = Fig3Result(scale=scale)

    configs = {
        "HyRec k=10": (HyRecConfig(k=10), None),
        "HyRec k=10 IR=7": (HyRecConfig(k=10), WEEK),
        "HyRec k=20": (HyRecConfig(k=20), None),
    }
    for name, (config, bound) in configs.items():
        result.series[name] = _replay_hyrec_probed(
            trace, config, seed, probe_times, inter_request_bound=bound
        )

    result.series["Offline Ideal k=10"] = _replay_offline_probed(
        trace, k=10, period_s=WEEK, probe_times=probe_times
    )
    result.series["Ideal upper bound"] = _ideal_probed(trace, k=10, probe_times=probe_times)
    return result


def run_fig4(
    scale: float = 0.15,
    seed: int = 0,
    dataset: str = "ML1",
    k: int = 10,
) -> Fig4Result:
    """Per-user quality/activity correlation after a full replay."""
    trace = load_dataset(dataset, scale=scale, seed=seed)
    system = HyRecSystem(HyRecConfig(k=k), seed=seed)
    system.replay(trace)

    liked = system.server.profiles.liked_sets()
    achieved = view_similarity_per_user(liked, system.server.knn_table.as_dict())
    ideal = ideal_view_similarity_per_user(liked, k=k)

    result = Fig4Result(scale=scale)
    for user, ideal_value in ideal.items():
        if ideal_value <= 0:
            continue
        profile_size = system.server.profiles.get(user).size
        ratio = min(1.0, achieved.get(user, 0.0) / ideal_value)
        result.points.append((profile_size, ratio))
    result.points.sort()
    return result


# --- replay instrumentation -------------------------------------------------


def _replay_hyrec_probed(
    trace: Trace,
    config: HyRecConfig,
    seed: int,
    probe_times: list[float],
    inter_request_bound: float | None,
) -> Series:
    system = HyRecSystem(config, seed=seed)
    series: Series = []
    pending = list(probe_times)

    def probe(outcome) -> None:
        while pending and outcome.timestamp >= pending[0]:
            at = pending.pop(0)
            liked = system.server.profiles.liked_sets()
            value = view_similarity_of_table(
                liked, system.server.knn_table.as_dict()
            )
            series.append((at / DAY, value))

    system.replay(trace, on_request=probe, inter_request_bound=inter_request_bound)
    # Final state probe for any remaining grid points.
    liked = system.server.profiles.liked_sets()
    final = view_similarity_of_table(liked, system.server.knn_table.as_dict())
    for at in pending:
        series.append((at / DAY, final))
    return series


def _replay_offline_probed(
    trace: Trace, k: int, period_s: float, probe_times: list[float]
) -> Series:
    system = CentralizedOfflineSystem(k=k, period_s=period_s)
    series: Series = []
    pending = list(probe_times)

    def probe(outcome) -> None:
        while pending and outcome.timestamp >= pending[0]:
            at = pending.pop(0)
            liked = system.profiles.liked_sets()
            value = view_similarity_of_table(liked, system.backend.knn_table)
            series.append((at / DAY, value))

    system.replay(trace, on_request=probe)
    liked = system.profiles.liked_sets()
    final = view_similarity_of_table(liked, system.backend.knn_table)
    for at in pending:
        series.append((at / DAY, final))
    return series


def _ideal_probed(trace: Trace, k: int, probe_times: list[float]) -> Series:
    """Ideal KNN recomputed *at every probe* (the online upper bound)."""
    series: Series = []
    state: dict[int, dict[int, float]] = {}
    iterator = iter(trace)
    current = next(iterator, None)
    for at in probe_times:
        while current is not None and current.timestamp <= at:
            state.setdefault(current.user, {})[current.item] = current.value
            current = next(iterator, None)
        liked = {
            user: frozenset(i for i, v in items.items() if v == 1.0)
            for user, items in state.items()
        }
        series.append((at / DAY, ideal_view_similarity(liked, k=k)))
    return series
