"""Figure 10: personalization-job message size versus profile size.

Serializes *real* personalization jobs (worst-case candidate set for
k=10, exactly like Figures 8-9) and reports the raw JSON size and the
gzipped size per profile size.  The paper reports <10kB wire size at
profile size 500 with a compression ratio around 71%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.common import format_rows
from repro.eval.fig8_fig9 import build_population
from repro.messages import wire_sizes
from repro.sim.randomness import derive_rng


@dataclass
class Fig10Result:
    """(raw, gzip) byte sizes per profile size."""

    profile_sizes: list[int]
    raw_bytes: dict[int, float] = field(default_factory=dict)
    gzip_bytes: dict[int, float] = field(default_factory=dict)

    def compression_ratio(self, ps: int) -> float:
        """Fraction of bytes removed by gzip at one profile size."""
        raw = self.raw_bytes[ps]
        if raw <= 0:
            return 0.0
        return 1.0 - self.gzip_bytes[ps] / raw

    def format_report(self) -> str:
        headers = ["Profile size", "json", "gzip", "compression"]
        rows = []
        for ps in self.profile_sizes:
            rows.append(
                [
                    str(ps),
                    f"{self.raw_bytes[ps] / 1000:.1f}kB",
                    f"{self.gzip_bytes[ps] / 1000:.1f}kB",
                    f"{self.compression_ratio(ps) * 100:.0f}%",
                ]
            )
        return format_rows(
            headers, rows, title="Figure 10 -- job message size vs profile size"
        )


def run_fig10(
    profile_sizes: tuple[int, ...] = (10, 50, 100, 200, 350, 500),
    num_users: int = 300,
    jobs_per_point: int = 20,
    k: int = 10,
    seed: int = 0,
) -> Fig10Result:
    """Average wire sizes of real jobs at each profile size."""
    result = Fig10Result(profile_sizes=list(profile_sizes))
    for ps in profile_sizes:
        server = build_population(num_users, ps, k=k, seed=seed)
        rng = derive_rng(seed, f"fig10:{ps}")
        users = server.profiles.users()
        raw_total = 0
        gzip_total = 0
        for _ in range(jobs_per_point):
            user = users[rng.randrange(len(users))]
            job = server.handle_online_request(user)
            # Measure exactly what the server puts on the wire: its
            # fragment-spliced gzip member, not a reference encoder.
            wire = server.render_online_response(job)
            raw, _ = wire_sizes(job.to_payload())
            raw_total += raw
            gzip_total += len(wire)
        result.raw_bytes[ps] = raw_total / jobs_per_point
        result.gzip_bytes[ps] = gzip_total / jobs_per_point
    return result
