"""Churn ablation: P2P degrades with on/off dynamics, HyRec does not.

Section 2.4's architectural claim, quantified:

    "Unlike [the decentralized systems], HyRec allows clients to have
    offline users within their KNN, thus leveraging clients that are
    not concurrently online."

Protocol: both systems first converge on the same workload.  Then a
churn phase runs: every gossip cycle, a fraction of machines goes
offline and offline machines return at a matched rate (stationary
online share ~60%).  The P2P overlay must evict unreachable peers
from cluster views and re-find them later; HyRec's server-side KNN
table keeps referencing offline users, and online users' requests
continue to refine it.  The metric is the average view similarity of
the neighborhoods each system would serve recommendations from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.p2p import P2PRecommender
from repro.core.config import HyRecConfig
from repro.core.system import HyRecSystem
from repro.datasets import load_dataset
from repro.eval.common import format_rows
from repro.gossip.churn import ChurnProcess
from repro.metrics.view_similarity import (
    ideal_view_similarity,
    view_similarity_of_table,
)
from repro.sim.randomness import derive_seed


@dataclass
class ChurnAblationResult:
    """View similarity after the churn phase, per churn level."""

    scale: float
    ideal: float
    p2p: dict[float, float] = field(default_factory=dict)
    hyrec: dict[float, float] = field(default_factory=dict)

    def degradation(self, system: str) -> float:
        """Quality lost between no churn and the highest churn level."""
        curve = self.p2p if system == "p2p" else self.hyrec
        levels = sorted(curve)
        baseline = curve[levels[0]]
        if baseline <= 0:
            return 0.0
        return 1.0 - curve[levels[-1]] / baseline

    def format_report(self) -> str:
        headers = ["leave rate/cycle", "P2P view sim", "HyRec view sim"]
        rows = []
        for level in sorted(self.p2p):
            rows.append(
                [
                    f"{level:.0%}",
                    f"{self.p2p[level]:.4f}",
                    f"{self.hyrec[level]:.4f}",
                ]
            )
        rows.append(["ideal bound", f"{self.ideal:.4f}", f"{self.ideal:.4f}"])
        return format_rows(
            headers,
            rows,
            title=(
                f"Churn ablation -- neighborhood quality under churn "
                f"(scale={self.scale})"
            ),
        )


def run_churn_ablation(
    scale: float = 0.04,
    seed: int = 0,
    leave_rates: tuple[float, ...] = (0.0, 0.2, 0.4),
    warm_cycles: int = 12,
    churn_cycles: int = 15,
    k: int = 5,
    dataset: str = "ML1",
) -> ChurnAblationResult:
    """Measure both architectures' quality under increasing churn."""
    trace = load_dataset(dataset, scale=scale, seed=seed)
    liked_final: dict[int, frozenset[int]] = {}
    result = ChurnAblationResult(scale=scale, ideal=0.0)

    for leave_rate in leave_rates:
        # Matched return rate targets a ~60% stationary online share
        # (fully online when there is no churn at all).
        return_rate = 1.0 if leave_rate == 0.0 else leave_rate * 1.5

        # --- P2P ----------------------------------------------------------
        p2p = P2PRecommender(k=k, seed=derive_seed(seed, f"p2p:{leave_rate}"))
        for rating in trace:
            p2p.record_rating(rating.user, rating.item, rating.value)
        p2p.run_cycles(warm_cycles)
        churn = ChurnProcess(
            list(p2p.profiles),
            leave_probability=leave_rate,
            return_probability=return_rate,
            seed=derive_seed(seed, f"churn:{leave_rate}"),
        )
        for _ in range(churn_cycles):
            departed, returned = churn.step()
            p2p.apply_churn(departed, returned)
            p2p.run_cycle()
        liked_final = {uid: p2p.profiles[uid].liked_items() for uid in p2p.profiles}
        result.p2p[leave_rate] = view_similarity_of_table(
            liked_final, p2p.knn_table()
        )

        # --- HyRec under the *same* on/off pattern -------------------------
        hyrec = HyRecSystem(
            HyRecConfig(k=k), seed=derive_seed(seed, f"hyrec:{leave_rate}")
        )
        hyrec.replay(trace)
        mirror = ChurnProcess(
            list(trace.users),
            leave_probability=leave_rate,
            return_probability=return_rate,
            seed=derive_seed(seed, f"churn:{leave_rate}"),  # same pattern
        )
        for _ in range(churn_cycles):
            mirror.step()
            # Only online users visit the site; their requests keep
            # refining the shared table.  Offline users' rows persist.
            for user_id in sorted(mirror.online):
                hyrec.request(user_id)
        result.hyrec[leave_rate] = view_similarity_of_table(
            hyrec.server.profiles.liked_sets(),
            hyrec.server.knn_table.as_dict(),
        )

    result.ideal = ideal_view_similarity(liked_final, k=k)
    return result
