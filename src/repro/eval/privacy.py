"""Privacy experiment: linking anonymized profiles across reshuffles.

Quantifies Section 6's caveat.  A curious client keeps requesting
personalization jobs and records every (token, liked-set) pair it
sees.  The server reshuffles its anonymous mapping.  The client
collects again and runs the :class:`~repro.core.privacy.LinkageAttack`.

Reported per profile-size regime: how many of the re-observed users
the attacker re-identifies.  Expected shape: near-perfect linkage for
large, distinctive MovieLens-like profiles; substantially less for
small Digg-like ones -- anonymity through reshuffling only works when
profiles are not fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import HyRecConfig
from repro.core.privacy import LinkageAttack, LinkageReport
from repro.core.server import HyRecServer
from repro.eval.common import format_rows
from repro.sim.randomness import derive_rng


@dataclass
class PrivacyResult:
    """Linkage accuracy per (profile size, drift) cell."""

    num_users: int
    reports: dict[tuple[int, float], LinkageReport] = field(default_factory=dict)

    def accuracy(self, profile_size: int, drift: float) -> float:
        return self.reports[(profile_size, drift)].accuracy

    def format_report(self) -> str:
        sizes = sorted({size for size, _ in self.reports})
        drifts = sorted({drift for _, drift in self.reports})
        headers = ["profile size"] + [f"drift x{d:g}" for d in drifts]
        rows = []
        for size in sizes:
            row = [str(size)]
            for drift in drifts:
                row.append(f"{self.reports[(size, drift)].accuracy:.0%}")
            rows.append(row)
        return format_rows(
            headers,
            rows,
            title=(
                "Section 6 -- cross-epoch linkage accuracy vs profile size "
                f"and inter-epoch drift ({self.num_users} users)"
            ),
        )


def _popular_item(rng, catalog: int) -> int:
    """Log-uniform item draw: heavy popularity skew, like a front page.

    Everyone rating the same few hot items is precisely what makes
    small profiles collide -- and reshuffling useful.
    """
    return min(catalog - 1, max(0, int(catalog ** rng.random()) - 1))


def _observe(
    server: HyRecServer, attacker: int, requests: int
) -> dict[str, frozenset[str]]:
    """What a curious client sees: anonymized candidate profiles."""
    seen: dict[str, frozenset[str]] = {}
    for _ in range(requests):
        job = server.handle_online_request(attacker)
        for token, profile in job.candidates.items():
            liked = frozenset(k for k, v in profile.items() if v == 1.0)
            seen[token] = liked
    return seen


def run_privacy_attack(
    profile_sizes: tuple[int, ...] = (5, 25, 100),
    drifts: tuple[float, ...] = (0.5, 2.0, 10.0),
    num_users: int = 120,
    observe_requests: int = 40,
    catalog: int = 300,
    seed: int = 0,
) -> PrivacyResult:
    """Run the linkage attack over a (profile size, drift) grid.

    ``catalog`` is deliberately small and popularity-skewed (popular
    items dominate real feeds, so distinct users collide on them);
    ``drift`` is the fraction of additional ratings each user accrues
    between the two observation windows.  These are the only effects
    that give reshuffling any protective value -- the expected (and
    observed) result is that linkage stays near-perfect except for
    tiny profiles under extreme drift, which is precisely the caveat
    Section 6 raises.
    """
    result = PrivacyResult(num_users=num_users)
    attack = LinkageAttack()

    for size in profile_sizes:
        for drift in drifts:
            if drift < 0:
                raise ValueError("drift cannot be negative")
            rng = derive_rng(seed, f"privacy:{size}:{drift}")
            server = HyRecServer(HyRecConfig(k=10), seed=seed)
            for user in range(num_users):
                seen: set[int] = set()
                while len(seen) < min(size, catalog):
                    seen.add(_popular_item(rng, catalog))
                for item in seen:
                    server.record_rating(
                        user, item, 1.0 if rng.random() < 0.85 else 0.0
                    )
            attacker = 0

            before = _observe(server, attacker, observe_requests)
            # Profiles keep evolving between epochs: each user adds
            # fresh ratings worth `drift` of her original profile.
            for user in range(num_users):
                for _ in range(max(1, round(size * drift))):
                    server.record_rating(
                        user,
                        _popular_item(rng, catalog),
                        1.0 if rng.random() < 0.85 else 0.0,
                    )
            # The harness (not the attacker) reads the true mapping.
            owner_of_old = {
                token: server.anonymizer.resolve_user(token) for token in before
            }
            server.anonymizer.reshuffle()
            after = _observe(server, attacker, observe_requests)
            owner_of_new = {
                token: server.anonymizer.resolve_user(token) for token in after
            }

            old_token_of_user = {
                uid: token for token, uid in owner_of_old.items()
            }
            ground_truth = {
                new_token: old_token_of_user[uid]
                for new_token, uid in owner_of_new.items()
                if uid in old_token_of_user
            }
            result.reports[(size, drift)] = attack.evaluate(
                before, after, ground_truth
            )
    return result
