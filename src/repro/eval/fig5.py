"""Figure 5: convergence of the candidate-set size.

As neighborhoods converge, ``Nu`` and ``KNN(Nu)`` overlap more and
more, so the sampled candidate set shrinks well below its ``2k + k^2``
bound (to ~55 for k=10 in the paper).  This experiment replays ML1
for several values of k and buckets the sampler's recorded sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import HyRecConfig
from repro.core.system import HyRecSystem
from repro.datasets import load_dataset
from repro.eval.common import format_rows, series_to_rows
from repro.metrics.convergence import bucket_series
from repro.sim.clock import MINUTE


@dataclass
class Fig5Result:
    """Mean candidate-set size over time, one series per k."""

    scale: float
    upper_bounds: dict[str, int] = field(default_factory=dict)
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)

    def final_mean(self, name: str) -> float:
        """Converged (last-bucket) mean candidate size of a series."""
        return self.series[name][-1][1]

    def format_report(self) -> str:
        headers, rows = series_to_rows(
            self.series, "minute", y_format="{:.1f}", x_format="{:.0f}"
        )
        bound_note = ", ".join(
            f"{name}: bound {bound}" for name, bound in self.upper_bounds.items()
        )
        return format_rows(
            headers,
            rows,
            title=(
                f"Figure 5 -- candidate-set size convergence "
                f"(scale={self.scale}; {bound_note})"
            ),
        )


def run_fig5(
    scale: float = 0.2,
    seed: int = 0,
    ks: tuple[int, ...] = (5, 10),
    buckets: int = 12,
    dataset: str = "ML1",
) -> Fig5Result:
    """Replay ML1 once per k, recording sampler candidate sizes."""
    trace = load_dataset(dataset, scale=scale, seed=seed)
    result = Fig5Result(scale=scale)
    duration_min = max(1.0, trace.duration / MINUTE)
    bucket_width = duration_min / buckets

    for k in ks:
        name = f"k={k}"
        system = HyRecSystem(HyRecConfig(k=k), seed=seed)
        system.replay(trace)
        samples = [
            (timestamp / MINUTE, float(size))
            for timestamp, size in system.server.sampler.size_history
        ]
        points = bucket_series(samples, bucket_width)
        result.series[name] = [(p.time, p.mean) for p in points]
        result.upper_bounds[name] = system.server.sampler.max_candidate_size()
    return result
