"""TiVo vs HyRec on a dynamic workload (Section 2.4, quantified).

The paper dismisses TiVo's hybrid as "unsuitable for dynamic websites
dealing in real time with continuous streams of items" because its
item-item correlations refresh only every two weeks.  We test exactly
that: run the quality protocol on the Digg workload -- where stories
live for a day or two -- with TiVo at its native two-week period, a
charitable daily-period TiVo, and HyRec.

The structural prediction: any story published after TiVo's last
correlation run is *unrecommendable* by construction, so on news
workloads TiVo's hit rate collapses while HyRec (whose candidate sets
carry live profiles) keeps working.  On slow-moving MovieLens the gap
should shrink -- that contrast is the point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.tivo import TivoSystem
from repro.core.config import HyRecConfig
from repro.core.system import HyRecSystem
from repro.datasets import load_dataset, time_split
from repro.eval.common import format_rows
from repro.eval.fig6 import HyRecQualityAdapter
from repro.metrics.recommendation_quality import QualityProtocol, QualityResult
from repro.sim.clock import DAY, WEEK


class TivoQualityAdapter:
    """Bridges :class:`TivoSystem` to the quality protocol."""

    def __init__(self, system: TivoSystem) -> None:
        self.system = system

    def record_rating(
        self, user_id: int, item: int, value: float, timestamp: float
    ) -> None:
        self.system.record_rating(user_id, item, value, timestamp)
        # Visiting the site triggers the schedule check, like TiVo's
        # daily client wake-up.
        self.system.server.maybe_recompute(timestamp)

    def recommend_for(self, user_id: int, now: float, n: int) -> list[int]:
        return self.system.recommend_for(user_id, now, n)


@dataclass
class TivoComparisonResult:
    """Quality per system per dataset."""

    n_max: int
    scales: dict[str, float]
    results: dict[str, dict[str, QualityResult]] = field(default_factory=dict)

    def quality(self, dataset: str, system: str, n: int | None = None) -> int:
        n_eff = n if n is not None else self.n_max
        return self.results[dataset][system].hits_at[n_eff]

    def format_report(self) -> str:
        datasets = list(self.results)
        systems = list(next(iter(self.results.values())))
        headers = ["System"] + [
            f"{d} hits@{self.n_max}" for d in datasets
        ]
        rows = []
        for system in systems:
            row = [system]
            for dataset in datasets:
                quality = self.results[dataset][system]
                row.append(
                    f"{quality.hits_at[self.n_max]} / {quality.positives}"
                )
            rows.append(row)
        return format_rows(
            headers,
            rows,
            title="TiVo vs HyRec -- item-correlation staleness on dynamic data",
        )


def run_tivo_comparison(
    scales: dict[str, float] | None = None,
    seed: int = 0,
    n_max: int = 10,
    k: int = 10,
) -> TivoComparisonResult:
    """Quality protocol on Digg (dynamic) and ML1 (slow-moving)."""
    chosen = scales if scales is not None else {"Digg": 0.01, "ML1": 0.08}
    protocol = QualityProtocol(n_max=n_max)
    result = TivoComparisonResult(n_max=n_max, scales=dict(chosen))

    for dataset, scale in chosen.items():
        trace = load_dataset(dataset, scale=scale, seed=seed)
        train, test = time_split(trace)
        per_system: dict[str, QualityResult] = {}

        hyrec = HyRecQualityAdapter(
            HyRecSystem(HyRecConfig(k=k, r=n_max), seed=seed)
        )
        per_system["HyRec"] = protocol.run(hyrec, train, test)

        tivo_biweekly = TivoQualityAdapter(
            TivoSystem(r=n_max, correlation_period_s=2 * WEEK)
        )
        per_system["TiVo p=2w"] = protocol.run(tivo_biweekly, train, test)

        tivo_daily = TivoQualityAdapter(
            TivoSystem(r=n_max, correlation_period_s=DAY)
        )
        per_system["TiVo p=24h"] = protocol.run(tivo_daily, train, test)

        result.results[dataset] = per_system
    return result
