"""Figure 7: wall-clock time of the four offline KNN back-ends.

Runs Exhaustive (Offline-Ideal on Phoenix), MahoutSingle, ClusMahout
and Offline-CRec on every workload.  Datasets are scaled per workload
so the sweep stays laptop-sized while preserving their relative sizes
(ML1 < Digg-sample < ML2 < ML3 in user count); the wall-clock is the
engine's cluster model over *measured* task times.

Expected shape: CRec fastest (except possibly against ClusMahout on
the smallest dataset), Exhaustive slowest, and the gap growing with
dataset size (Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.mahout import (
    run_clus_mahout,
    run_crec_backend,
    run_exhaustive,
    run_mahout_single,
)
from repro.datasets import load_dataset
from repro.eval.common import format_rows, liked_sets_of_trace

#: Default per-dataset scales: keep the size *ordering* of Table 2
#: while bounding the quadratic exhaustive pass.
DEFAULT_SCALES: dict[str, float] = {
    "ML1": 0.5,
    "ML2": 0.12,
    "ML3": 0.015,
    "Digg": 0.02,
}


@dataclass
class Fig7Result:
    """Wall-clock seconds per (engine, dataset)."""

    scales: dict[str, float]
    users: dict[str, int] = field(default_factory=dict)
    walltimes: dict[str, dict[str, float]] = field(default_factory=dict)

    def engines(self) -> list[str]:
        return ["Exhaustive", "MahoutSingle", "ClusMahout", "CRec"]

    def format_report(self) -> str:
        headers = ["Backend"] + [
            f"{name} ({self.users[name]}u)" for name in self.walltimes
        ]
        rows = []
        for engine in self.engines():
            row = [engine]
            for name in self.walltimes:
                row.append(f"{self.walltimes[name][engine]:.2f}s")
            rows.append(row)
        return format_rows(
            headers,
            rows,
            title="Figure 7 -- KNN selection wall-clock time (cluster model)",
        )


def run_fig7(
    scales: dict[str, float] | None = None,
    seed: int = 0,
    k: int = 10,
    names: list[str] | None = None,
) -> Fig7Result:
    """Run all four back-ends on the (scaled) workloads."""
    chosen_scales = dict(DEFAULT_SCALES)
    if scales:
        chosen_scales.update(scales)
    selected = names if names is not None else list(chosen_scales)
    result = Fig7Result(scales=chosen_scales)

    for name in selected:
        trace = load_dataset(name, scale=chosen_scales[name], seed=seed)
        liked = liked_sets_of_trace(trace)
        result.users[name] = len(liked)
        _, exhaustive = run_exhaustive(liked, k=k)
        _, mahout1 = run_mahout_single(liked, k=k)
        _, mahout2 = run_clus_mahout(liked, k=k)
        _, crec = run_crec_backend(liked, k=k, seed=seed)
        result.walltimes[name] = {
            "Exhaustive": exhaustive.wall_clock_s,
            "MahoutSingle": mahout1.wall_clock_s,
            "ClusMahout": mahout2.wall_clock_s,
            "CRec": crec.wall_clock_s,
        }
    return result
