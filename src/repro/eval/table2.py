"""Table 2: dataset statistics.

Generates every workload at the requested scale and prints the same
columns as the paper (users, items, ratings, average ratings per
user).  At ``scale=1.0`` the first four columns match Table 2 by
construction; the average-ratings column is emergent (it follows from
the generators' activity distributions) and is the value to compare.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets import DatasetStats, dataset_names, load_dataset
from repro.eval.common import format_rows

#: The paper's Table 2, for side-by-side reporting.
PAPER_TABLE2 = {
    "ML1": (943, 1_700, 100_000, 106),
    "ML2": (6_040, 4_000, 1_000_000, 166),
    "ML3": (69_878, 10_000, 10_000_000, 143),
    "Digg": (59_167, 7_724, 782_807, 13),
}


@dataclass
class Table2Result:
    """Measured dataset statistics at one scale."""

    scale: float
    stats: dict[str, DatasetStats]

    def format_report(self) -> str:
        headers = [
            "Dataset",
            "Users",
            "Items",
            "Ratings",
            "Avg ratings",
            "Paper avg",
        ]
        rows = []
        for name, stat in self.stats.items():
            paper_avg = PAPER_TABLE2[name][3]
            rows.append(
                [
                    name,
                    f"{stat.num_users:,}",
                    f"{stat.num_items:,}",
                    f"{stat.num_ratings:,}",
                    f"{stat.avg_ratings_per_user:.1f}",
                    f"{paper_avg}",
                ]
            )
        return format_rows(
            headers, rows, title=f"Table 2 -- dataset statistics (scale={self.scale})"
        )


def run_table2(
    scale: float = 0.05,
    seed: int = 0,
    names: list[str] | None = None,
) -> Table2Result:
    """Generate the (scaled) workloads and collect their statistics."""
    selected = names if names is not None else dataset_names()
    stats: dict[str, DatasetStats] = {}
    for name in selected:
        trace = load_dataset(name, scale=scale, seed=seed, binarize=False)
        stats[name] = trace.stats()
    return Table2Result(scale=scale, stats=stats)
