"""Table 3: cost reduction of HyRec over a centralized back-end.

Two modes:

* **paper-calibrated** (default): plug the per-dataset Offline-CRec
  wall-clock times recovered from the paper (see
  :data:`repro.sim.cost.PAPER_CREC_WALLTIME_S`) into the cost model --
  this reproduces the printed Table 3 cells and validates the model's
  arithmetic;
* **measured**: run the real Offline-CRec back-end on a scaled
  workload, extrapolate its wall-clock to full scale (the sampling
  KNN is linear in the number of users), and price that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.crec import OfflineCRecBackend
from repro.core.tables import ProfileTable
from repro.datasets import load_dataset
from repro.eval.common import format_rows
from repro.sim.clock import HOUR
from repro.sim.cost import CostModel, PAPER_CREC_WALLTIME_S

#: KNN-selection periods per dataset, as in Table 3 (hours).
TABLE3_PERIODS_H: dict[str, list[float]] = {
    "ML1": [48, 24, 12],
    "ML2": [48, 24, 12],
    "ML3": [48, 24, 12],
    "Digg": [12, 6, 2],
}

#: The paper's Table 3 cells (percent saved), for side-by-side output.
PAPER_TABLE3: dict[str, list[float]] = {
    "ML1": [8.6, 15.8, 27.4],
    "ML2": [31.0, 47.6, 49.2],
    "ML3": [49.2, 49.2, 49.2],
    "Digg": [2.5, 5.0, 9.5],
}


@dataclass
class Table3Result:
    """Cost reductions per dataset and period."""

    mode: str
    knn_walltime_s: dict[str, float]
    reductions: dict[str, list[float]] = field(default_factory=dict)

    def format_report(self) -> str:
        headers = ["Dataset", "KNN wall"] + [
            f"p={h:g}h" for h in (48, 24, 12, 6, 2)
        ] + ["paper"]
        rows = []
        for name, values in self.reductions.items():
            periods = TABLE3_PERIODS_H[name]
            by_period = dict(zip(periods, values))
            row = [name, f"{self.knn_walltime_s[name]:,.0f}s"]
            for h in (48, 24, 12, 6, 2):
                row.append(f"{by_period[h] * 100:.1f}%" if h in by_period else "-")
            row.append("/".join(f"{v:g}" for v in PAPER_TABLE3[name]))
            rows.append(row)
        return format_rows(
            headers,
            rows,
            title=f"Table 3 -- HyRec cost reduction ({self.mode})",
        )


def run_table3(
    mode: str = "paper-calibrated",
    scale: float = 0.05,
    seed: int = 0,
    names: list[str] | None = None,
) -> Table3Result:
    """Compute Table 3 in the requested mode."""
    if mode not in ("paper-calibrated", "measured"):
        raise ValueError(f"unknown mode {mode!r}")
    selected = names if names is not None else list(TABLE3_PERIODS_H)
    if mode == "paper-calibrated":
        walltimes = {name: PAPER_CREC_WALLTIME_S[name] for name in selected}
    else:
        walltimes = {
            name: _measure_crec_walltime(name, scale, seed) for name in selected
        }

    model = CostModel()
    result = Table3Result(mode=mode, knn_walltime_s=walltimes)
    for name in selected:
        result.reductions[name] = [
            model.cost_reduction(walltimes[name], hours * HOUR)
            for hours in TABLE3_PERIODS_H[name]
        ]
    return result


def _measure_crec_walltime(name: str, scale: float, seed: int) -> float:
    """Measured back-end wall-clock, extrapolated to full scale.

    The sampling KNN does O(N * k^2) similarity work per iteration, so
    wall-clock extrapolates linearly in the user count (candidate-set
    size is independent of N).
    """
    trace = load_dataset(name, scale=scale, seed=seed)
    profiles = ProfileTable()
    for rating in trace:
        profiles.record(rating.user, rating.item, rating.value, rating.timestamp)
    backend = OfflineCRecBackend(profiles, k=10, seed=seed)
    run = backend.recompute(now=0.0)
    scaled_users = max(1, len(profiles))
    # Full-scale user count comes from the workload spec; no need to
    # generate the full trace just to count its users.
    from repro.datasets.loader import DATASETS

    spec, _ = DATASETS[name]
    return run.wall_clock_s * (spec.num_users / scaled_users)
