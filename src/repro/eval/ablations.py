"""Ablations on HyRec's design choices (DESIGN.md, A1-A3).

* **A1 -- random injection**: the Sampler's k random users are what
  guarantees eventual convergence (Section 3.1: "adding random users
  to the sample prevents this search from getting stuck into a local
  optimum").  Removing them should hurt final view similarity.
* **A2 -- two-hop candidates**: ``KNN(Nu)`` is what makes convergence
  *fast* ("compute similarities with all the 2-hop neighbors at once,
  leading to faster convergence", Section 2.4).  Removing it should
  slow convergence even if the end point survives thanks to randoms.
* **A3 -- similarity metric**: the paper uses cosine "but any other
  metric could be used"; this ablation swaps in Jaccard and overlap
  and reports view similarity (against the matching ideal) and
  recommendation quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import HyRecConfig
from repro.core.system import HyRecSystem
from repro.datasets import load_dataset, time_split
from repro.eval.common import format_rows
from repro.eval.fig6 import HyRecQualityAdapter
from repro.metrics.recommendation_quality import QualityProtocol
from repro.metrics.view_similarity import (
    ideal_view_similarity,
    view_similarity_of_table,
)


@dataclass
class SamplerAblationResult:
    """Final view similarity per sampler variant."""

    scale: float
    ideal: float
    view_similarity: dict[str, float] = field(default_factory=dict)

    def format_report(self) -> str:
        rows = []
        for name, value in self.view_similarity.items():
            share = value / self.ideal if self.ideal > 0 else 0.0
            rows.append([name, f"{value:.4f}", f"{share * 100:.1f}%"])
        rows.append(["Ideal upper bound", f"{self.ideal:.4f}", "100.0%"])
        return format_rows(
            ["Sampler variant", "view similarity", "% of ideal"],
            rows,
            title=f"Ablation A1/A2 -- sampler components (scale={self.scale})",
        )


def run_sampler_ablation(
    scale: float = 0.08, seed: int = 0, k: int = 10, dataset: str = "ML1"
) -> SamplerAblationResult:
    """Replay with each sampler variant; compare final view similarity."""
    trace = load_dataset(dataset, scale=scale, seed=seed)
    variants = {
        "full (2-hop + random)": HyRecConfig(k=k),
        "no random injection": HyRecConfig(k=k, num_random=0),
        "no two-hop": HyRecConfig(k=k, include_two_hop=False),
        "random only": HyRecConfig(k=k, include_two_hop=False, num_random=2 * k),
    }
    result = SamplerAblationResult(scale=scale, ideal=0.0)
    liked_final: dict[int, frozenset[int]] = {}
    for name, config in variants.items():
        system = HyRecSystem(config, seed=seed)
        system.replay(trace)
        liked_final = system.server.profiles.liked_sets()
        result.view_similarity[name] = view_similarity_of_table(
            liked_final, system.server.knn_table.as_dict()
        )
    result.ideal = ideal_view_similarity(liked_final, k=k)
    return result


@dataclass
class SimilarityAblationResult:
    """View similarity and quality@10 per similarity metric."""

    scale: float
    view_similarity: dict[str, float] = field(default_factory=dict)
    ideal: dict[str, float] = field(default_factory=dict)
    quality_at_10: dict[str, int] = field(default_factory=dict)

    def format_report(self) -> str:
        rows = []
        for name in self.view_similarity:
            rows.append(
                [
                    name,
                    f"{self.view_similarity[name]:.4f}",
                    f"{self.ideal[name]:.4f}",
                    str(self.quality_at_10[name]),
                ]
            )
        return format_rows(
            ["Metric", "view sim", "ideal (same metric)", "quality@10"],
            rows,
            title=f"Ablation A3 -- similarity metrics (scale={self.scale})",
        )


def run_similarity_ablation(
    scale: float = 0.08, seed: int = 0, k: int = 10, dataset: str = "ML1"
) -> SimilarityAblationResult:
    """Swap the widget's similarity metric; measure quality effects."""
    trace = load_dataset(dataset, scale=scale, seed=seed)
    train, test = time_split(trace)
    protocol = QualityProtocol(n_max=10)
    result = SimilarityAblationResult(scale=scale)

    from repro.core.similarity import get_metric

    for metric_name in ("cosine", "jaccard", "overlap"):
        system = HyRecSystem(HyRecConfig(k=k, metric=metric_name), seed=seed)
        system.replay(trace)
        liked = system.server.profiles.liked_sets()
        result.view_similarity[metric_name] = view_similarity_of_table(
            liked,
            system.server.knn_table.as_dict(),
            metric=get_metric(metric_name),
        )
        result.ideal[metric_name] = ideal_view_similarity(
            liked, k=k, metric=metric_name
        )

        quality_system = HyRecQualityAdapter(
            HyRecSystem(HyRecConfig(k=k, r=10, metric=metric_name), seed=seed)
        )
        quality = protocol.run(quality_system, train, test)
        result.quality_at_10[metric_name] = quality.hits_at[10]
    return result
