"""Figures 8 and 9: front-end response time and concurrency scaling.

Both experiments compare the per-request work of the two front-ends:

* **HyRec** serves ``/online/`` -- sampler lookup, job assembly, JSON
  encoding, gzip.  Measured by timing the real
  :class:`~repro.core.api.WebApi` byte path.
* **CRec** computes recommendations server-side -- sampler lookup plus
  Algorithm 2 over the candidate profiles.  Measured by timing the
  real :meth:`~repro.baselines.crec.CRecFrontend.serve`.
* **Online-Ideal** additionally recomputes the exact KNN per request.

The population is synthetic with exactly controlled profile sizes, and
the KNN tables are randomized so candidate sets sit near their
``2k + k^2`` worst case -- the paper's "worst case" setup for these
figures.  Figure 9 feeds the measured service-time samples into the
closed-loop queueing model (8 workers, like the PowerEdge's cores) and
sweeps the number of concurrent clients.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.crec import CRecFrontend
from repro.baselines.online_ideal import OnlineIdealSystem
from repro.core.api import WebApi
from repro.core.config import HyRecConfig
from repro.core.server import HyRecServer
from repro.eval.common import format_rows
from repro.metrics.timing import summarize_latencies
from repro.sim.loadgen import LoadGenerator, LoadResult
from repro.sim.randomness import derive_rng


# --- synthetic population ----------------------------------------------------


def build_population(
    num_users: int,
    profile_size: int,
    num_items: int | None = None,
    k: int = 10,
    seed: int = 0,
) -> HyRecServer:
    """A server preloaded with fixed-size profiles and random KNN rows.

    Random neighbor rows keep two-hop neighborhoods mostly disjoint,
    which maximizes candidate-set size -- the worst case the paper
    measures ("ignoring the decreasing size of the candidate set as
    the neighborhood converges").
    """
    if num_users <= k + 1:
        raise ValueError("population must exceed the neighborhood size")
    catalog = num_items if num_items is not None else max(1000, profile_size * 4)
    rng = derive_rng(seed, "population")
    server = HyRecServer(HyRecConfig(k=k, r=10), seed=seed)
    for user in range(num_users):
        items = rng.sample(range(catalog), min(profile_size, catalog))
        for item in items:
            value = 1.0 if rng.random() < 0.8 else 0.0
            server.record_rating(user, item, value, timestamp=0.0)
    users = list(range(num_users))
    for user in users:
        neighbors = rng.sample(users, k + 1)
        neighbors = [n for n in neighbors if n != user][:k]
        server.knn_table.update(user, neighbors)
    return server


def measure_hyrec_service(
    server: HyRecServer, requests: int, seed: int = 0
) -> list[float]:
    """Measured seconds per ``/online/`` response (build+JSON+gzip)."""
    api = WebApi(server)
    rng = derive_rng(seed, "hyrec-requests")
    users = server.profiles.users()
    samples: list[float] = []
    for _ in range(requests):
        user = users[rng.randrange(len(users))]
        start = time.perf_counter()
        api.online(user)
        samples.append(time.perf_counter() - start)
    return samples


def measure_crec_service(
    server: HyRecServer, requests: int, seed: int = 0
) -> list[float]:
    """Measured seconds per CRec front-end response (Algorithm 2)."""
    frontend = CRecFrontend(
        server.profiles, server.knn_table, k=server.config.k, seed=seed
    )
    rng = derive_rng(seed, "crec-requests")
    users = server.profiles.users()
    samples: list[float] = []
    for _ in range(requests):
        user = users[rng.randrange(len(users))]
        samples.append(frontend.serve(user).service_time_s)
    return samples


def measure_online_ideal_service(
    server: HyRecServer, requests: int, k: int, seed: int = 0
) -> list[float]:
    """Measured seconds per Online-Ideal response (global KNN + recs)."""
    system = OnlineIdealSystem(k=k)
    for user in server.profiles.users():
        profile = server.profiles.get(user)
        for item in profile.rated_items():
            system.record_rating(user, item, profile.value_of(item) or 0.0)
    rng = derive_rng(seed, "ideal-requests")
    users = server.profiles.users()
    samples: list[float] = []
    for _ in range(requests):
        user = users[rng.randrange(len(users))]
        samples.append(system.request(user).service_time_s)
    return samples


# --- Figure 8 -------------------------------------------------------------------


@dataclass
class Fig8Result:
    """Mean response time (ms) per system per profile size."""

    profile_sizes: list[int]
    num_users: int
    requests: int
    mean_ms: dict[str, dict[int, float]] = field(default_factory=dict)

    def format_report(self) -> str:
        headers = ["System"] + [f"ps={ps}" for ps in self.profile_sizes]
        rows = []
        for name, by_ps in self.mean_ms.items():
            rows.append(
                [name] + [f"{by_ps[ps]:.2f}ms" for ps in self.profile_sizes]
            )
        return format_rows(
            headers,
            rows,
            title=(
                f"Figure 8 -- mean response time over {self.requests} requests "
                f"({self.num_users} users)"
            ),
        )


def run_fig8(
    profile_sizes: tuple[int, ...] = (10, 50, 100, 250, 500),
    num_users: int = 400,
    requests: int = 200,
    seed: int = 0,
    include_online_ideal: bool = True,
) -> Fig8Result:
    """Measure all front-ends across profile sizes."""
    result = Fig8Result(
        profile_sizes=list(profile_sizes), num_users=num_users, requests=requests
    )
    systems = ["HyRec k=10", "HyRec k=20", "CRec k=10", "CRec k=20"]
    if include_online_ideal:
        systems.append("Online Ideal k=10")
    for name in systems:
        result.mean_ms[name] = {}

    for ps in profile_sizes:
        for k in (10, 20):
            server = build_population(num_users, ps, k=k, seed=seed)
            hyrec = measure_hyrec_service(server, requests, seed=seed)
            crec = measure_crec_service(server, requests, seed=seed)
            result.mean_ms[f"HyRec k={k}"][ps] = summarize_latencies(hyrec).mean_ms
            result.mean_ms[f"CRec k={k}"][ps] = summarize_latencies(crec).mean_ms
            if k == 10 and include_online_ideal:
                ideal = measure_online_ideal_service(
                    server, max(10, requests // 10), k=k, seed=seed
                )
                result.mean_ms["Online Ideal k=10"][ps] = summarize_latencies(
                    ideal
                ).mean_ms
    return result


# --- Figure 9 -----------------------------------------------------------------------


@dataclass
class Fig9Result:
    """Mean response time versus number of concurrent clients."""

    concurrencies: list[int]
    workers: int
    curves: dict[str, list[LoadResult]] = field(default_factory=dict)

    def saturation_capacity(self, name: str, threshold_ms: float = 1000.0) -> int:
        """Largest swept concurrency whose mean response stays under
        ``threshold_ms`` (the "able to serve" notion of Section 5.5)."""
        best = 0
        for load_result in self.curves[name]:
            if load_result.mean_response_ms <= threshold_ms:
                best = max(best, load_result.concurrency)
        return best

    def format_report(self) -> str:
        headers = ["Concurrency"] + list(self.curves)
        rows = []
        for index, conc in enumerate(self.concurrencies):
            row = [str(conc)]
            for name in self.curves:
                row.append(f"{self.curves[name][index].mean_response_ms:.1f}ms")
            rows.append(row)
        return format_rows(
            headers,
            rows,
            title=f"Figure 9 -- response time vs concurrent requests "
            f"({self.workers} workers)",
        )


def run_fig9(
    concurrencies: tuple[int, ...] = (1, 25, 50, 100, 200, 400, 700, 1000),
    profile_sizes: tuple[int, ...] = (10, 100),
    num_users: int = 300,
    calibration_requests: int = 120,
    workers: int = 8,
    seed: int = 0,
) -> Fig9Result:
    """Sweep concurrency with measured service-time samples."""
    result = Fig9Result(concurrencies=list(concurrencies), workers=workers)
    for ps in profile_sizes:
        server = build_population(num_users, ps, k=10, seed=seed)
        for system, samples in (
            ("HyRec", measure_hyrec_service(server, calibration_requests, seed)),
            ("CRec", measure_crec_service(server, calibration_requests, seed)),
        ):
            name = f"{system} ps={ps}"
            generator = LoadGenerator(
                service_time_fn=lambda seq, s=samples: s[seq % len(s)],
                workers=workers,
            )
            result.curves[name] = generator.sweep_concurrency(
                list(concurrencies), requests_per_point=max(concurrencies)
            )
    return result


def scalability_factor(
    hyrec_profile_size: int = 1000,
    crec_profile_size: int = 10,
    num_users: int = 200,
    requests: int = 60,
    workers: int = 8,
    threshold_ms: float = 100.0,
    seed: int = 0,
) -> dict[str, float]:
    """The Section 5.5 scalability claim, measured.

    The paper: "HyRec is able to serve as many concurrent requests
    with a profile size of 1000 as CRec with a profile size of 10"
    (a 100-fold profile-size advantage).  We compute each front-end's
    sustainable concurrency ``workers * threshold / service_time`` at
    its respective profile size and report the ratio.
    """
    hyrec_server = build_population(num_users, hyrec_profile_size, k=10, seed=seed)
    crec_server = build_population(num_users, crec_profile_size, k=10, seed=seed)
    hyrec_mean = summarize_latencies(
        measure_hyrec_service(hyrec_server, requests, seed)
    ).mean
    crec_mean = summarize_latencies(
        measure_crec_service(crec_server, requests, seed)
    ).mean
    threshold_s = threshold_ms / 1e3
    hyrec_capacity = workers * threshold_s / hyrec_mean
    crec_capacity = workers * threshold_s / crec_mean
    return {
        "hyrec_service_ms": hyrec_mean * 1e3,
        "crec_service_ms": crec_mean * 1e3,
        "hyrec_capacity": hyrec_capacity,
        "crec_capacity": crec_capacity,
        "capacity_ratio": hyrec_capacity / crec_capacity,
        "profile_size_ratio": hyrec_profile_size / crec_profile_size,
    }
