"""Experiment harness: one module per table/figure of Section 5.

Every experiment function returns a structured result object with a
``format_report()`` method printing the same rows/series the paper
plots, so that ``benchmarks/`` can both time the experiment and show
its output.  All experiments accept ``scale`` (workload size factor)
and ``seed``; the defaults are chosen so the whole suite finishes on
a laptop.

See DESIGN.md, Section 3, for the experiment index.
"""

from repro.eval.common import liked_sets_of_trace, liked_sets_of_profiles
from repro.eval.table2 import Table2Result, run_table2
from repro.eval.table3 import Table3Result, run_table3
from repro.eval.fig3_fig4 import Fig3Result, Fig4Result, run_fig3, run_fig4
from repro.eval.fig5 import Fig5Result, run_fig5
from repro.eval.fig6 import Fig6Result, run_fig6
from repro.eval.fig7 import Fig7Result, run_fig7
from repro.eval.fig8_fig9 import Fig8Result, Fig9Result, run_fig8, run_fig9
from repro.eval.fig10 import Fig10Result, run_fig10
from repro.eval.fig11_13 import (
    Fig11Result,
    Fig12Result,
    Fig13Result,
    run_fig11,
    run_fig12,
    run_fig13,
)
from repro.eval.p2p_bandwidth import P2PBandwidthResult, run_p2p_bandwidth
from repro.eval.ablations import (
    SamplerAblationResult,
    SimilarityAblationResult,
    run_sampler_ablation,
    run_similarity_ablation,
)
from repro.eval.churn import ChurnAblationResult, run_churn_ablation
from repro.eval.tivo_comparison import TivoComparisonResult, run_tivo_comparison
from repro.eval.privacy import PrivacyResult, run_privacy_attack

__all__ = [
    "liked_sets_of_trace",
    "liked_sets_of_profiles",
    "Table2Result",
    "run_table2",
    "Table3Result",
    "run_table3",
    "Fig3Result",
    "Fig4Result",
    "run_fig3",
    "run_fig4",
    "Fig5Result",
    "run_fig5",
    "Fig6Result",
    "run_fig6",
    "Fig7Result",
    "run_fig7",
    "Fig8Result",
    "Fig9Result",
    "run_fig8",
    "run_fig9",
    "Fig10Result",
    "run_fig10",
    "Fig11Result",
    "Fig12Result",
    "Fig13Result",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "P2PBandwidthResult",
    "run_p2p_bandwidth",
    "SamplerAblationResult",
    "SimilarityAblationResult",
    "run_sampler_ablation",
    "run_similarity_ablation",
    "ChurnAblationResult",
    "run_churn_ablation",
    "TivoComparisonResult",
    "run_tivo_comparison",
    "PrivacyResult",
    "run_privacy_attack",
]
