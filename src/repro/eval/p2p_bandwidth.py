"""Section 5.6's headline bandwidth comparison: P2P vs HyRec on Digg.

    "on the Digg dataset (with an average of 13 ratings per user),
    each node in a P2P recommender exchanges approximately 24MB in
    the whole experiment, while a HyRec widget only exchanges 8kB in
    the same setting (3% of the bandwidth consumption of the P2P
    solution)."

    (3% refers to the aggregate including overlay maintenance traffic
    measured in their deployment; the per-node byte counts above are
    the comparison we reproduce.)

We replay a scaled Digg trace through both systems:

* **P2P** -- all users join the overlay, profiles come from the trace,
  and the overlay gossips once per simulated minute.  A window of
  cycles is *measured* (every profile serialized for real) and the
  steady-state per-cycle traffic is extrapolated to the full two-week
  duration (20,160 cycles), as documented in
  :class:`repro.baselines.p2p.P2PTrafficReport`.
* **HyRec** -- the same trace replayed through the hybrid system;
  per-widget traffic is total metered wire bytes (both directions)
  divided by the user count.  No extrapolation: HyRec only talks when
  users make requests, and the trace contains all requests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.p2p import P2PRecommender, P2PTrafficReport
from repro.core.config import HyRecConfig
from repro.core.system import HyRecSystem
from repro.datasets import load_dataset
from repro.eval.common import format_rows
from repro.metrics.bandwidth import format_bytes


@dataclass
class P2PBandwidthResult:
    """Per-node traffic of both architectures on the same workload."""

    scale: float
    users: int
    p2p_report: P2PTrafficReport
    hyrec_bytes_per_widget: float
    hyrec_requests: int

    @property
    def p2p_bytes_per_node(self) -> float:
        return self.p2p_report.extrapolated_total_bytes_per_node

    @property
    def ratio(self) -> float:
        """HyRec per-widget bytes over P2P per-node bytes (paper: ~3e-4)."""
        if self.p2p_bytes_per_node <= 0:
            return 0.0
        return self.hyrec_bytes_per_widget / self.p2p_bytes_per_node

    def format_report(self) -> str:
        rows = [
            [
                "P2P (extrapolated)",
                format_bytes(self.p2p_bytes_per_node),
                f"{self.p2p_report.measured_cycles} cycles measured, "
                f"{self.p2p_report.target_cycles} total",
            ],
            [
                "HyRec widget",
                format_bytes(self.hyrec_bytes_per_widget),
                f"{self.hyrec_requests} requests metered",
            ],
            [
                "HyRec / P2P",
                f"{self.ratio * 100:.2f}%",
                "paper: 24MB vs 8kB (~0.03%)",
            ],
        ]
        return format_rows(
            ["System", "Bytes per node", "Notes"],
            rows,
            title=(
                f"Section 5.6 -- per-node bandwidth on Digg "
                f"(scale={self.scale}, {self.users} users)"
            ),
        )


def run_p2p_bandwidth(
    scale: float = 0.008,
    seed: int = 0,
    measured_cycles: int = 25,
    k: int = 10,
) -> P2PBandwidthResult:
    """Replay Digg through P2P and HyRec; compare per-node bytes."""
    trace = load_dataset("Digg", scale=scale, seed=seed)

    # --- P2P: load profiles, then gossip a measured window. -------------
    p2p = P2PRecommender(k=k, seed=seed)
    for rating in trace:
        p2p.record_rating(rating.user, rating.item, rating.value, rating.timestamp)
    # Warm the overlay before measuring (bootstrap traffic is not
    # steady state).
    p2p.run_cycles(5)
    p2p.reset_traffic()
    p2p.run_cycles(measured_cycles)
    report = p2p.traffic_report(trace.duration)

    # --- HyRec: full replay with metered traffic. -------------------------
    hyrec = HyRecSystem(HyRecConfig(k=k), seed=seed)
    hyrec.replay(trace)
    total_wire = hyrec.server.meter.total_wire_bytes
    users = len(trace.users)

    return P2PBandwidthResult(
        scale=scale,
        users=users,
        p2p_report=report,
        hyrec_bytes_per_widget=total_wire / max(1, users),
        hyrec_requests=hyrec.requests_served,
    )
