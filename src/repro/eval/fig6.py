"""Figure 6: recommendation quality versus number of recommendations.

Runs the [37] hit-counting protocol (80/20 time split) through four
systems: HyRec, Offline-Ideal with periods of 24h and 1h, and
Online-Ideal.  The expected shape (Section 5.3):

* Online-Ideal is the upper bound;
* HyRec beats Offline-Ideal p=24h (by up to 12% in the paper) and
  also edges out p=1h, landing ~13% below Online-Ideal;
* shorter offline periods help, but even p=1h cannot give brand-new
  users neighborhoods between two back-end runs -- HyRec can.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.offline_ideal import CentralizedOfflineSystem
from repro.baselines.online_ideal import OnlineIdealSystem
from repro.core.config import HyRecConfig
from repro.core.system import HyRecSystem
from repro.datasets import load_dataset, time_split
from repro.eval.common import format_rows
from repro.metrics.recommendation_quality import QualityProtocol, QualityResult
from repro.sim.clock import HOUR


class HyRecQualityAdapter:
    """Bridges :class:`HyRecSystem` to the quality protocol."""

    def __init__(self, system: HyRecSystem) -> None:
        self.system = system

    def record_rating(
        self, user_id: int, item: int, value: float, timestamp: float
    ) -> None:
        self.system.record_rating(user_id, item, value, timestamp)
        # Every rating is a page visit: it triggers a personalization
        # round trip, exactly like the replay loop of Section 5.2.
        self.system.request(user_id, now=timestamp)

    def recommend_for(self, user_id: int, now: float, n: int) -> list[int]:
        outcome = self.system.request(user_id, now=now)
        return outcome.recommendations[:n]


class CentralizedQualityAdapter:
    """Bridges the centralized systems to the quality protocol."""

    def __init__(self, system: CentralizedOfflineSystem | OnlineIdealSystem) -> None:
        self.system = system

    def record_rating(
        self, user_id: int, item: int, value: float, timestamp: float
    ) -> None:
        self.system.record_rating(user_id, item, value, timestamp)

    def recommend_for(self, user_id: int, now: float, n: int) -> list[int]:
        outcome = self.system.request(user_id, now=now)
        return outcome.recommendations[:n]


@dataclass
class Fig6Result:
    """Quality curves (hits at 1..n_max) per system."""

    scale: float
    n_max: int
    results: dict[str, QualityResult] = field(default_factory=dict)

    def quality_at(self, name: str, n: int) -> int:
        return self.results[name].hits_at[n]

    def format_report(self) -> str:
        headers = ["#recs"] + list(self.results)
        rows = []
        for n in range(1, self.n_max + 1):
            rows.append(
                [str(n)] + [str(res.hits_at[n]) for res in self.results.values()]
            )
        positives = next(iter(self.results.values())).positives
        return format_rows(
            headers,
            rows,
            title=(
                f"Figure 6 -- recommendation quality "
                f"(scale={self.scale}, {positives} test positives)"
            ),
        )


def run_fig6(
    scale: float = 0.08,
    seed: int = 0,
    n_max: int = 10,
    k: int = 10,
    dataset: str = "ML1",
) -> Fig6Result:
    """Run the quality protocol through all four Figure 6 systems."""
    trace = load_dataset(dataset, scale=scale, seed=seed)
    train, test = time_split(trace)
    protocol = QualityProtocol(n_max=n_max)
    result = Fig6Result(scale=scale, n_max=n_max)

    hyrec = HyRecQualityAdapter(
        HyRecSystem(HyRecConfig(k=k, r=n_max), seed=seed)
    )
    result.results["HyRec"] = protocol.run(hyrec, train, test)

    for period_h, label in ((24.0, "Offline Ideal p=24h"), (1.0, "Offline Ideal p=1h")):
        offline = CentralizedQualityAdapter(
            CentralizedOfflineSystem(k=k, r=n_max, period_s=period_h * HOUR)
        )
        result.results[label] = protocol.run(offline, train, test)

    online = CentralizedQualityAdapter(OnlineIdealSystem(k=k, r=n_max))
    result.results["Online Ideal"] = protocol.run(online, train, test)
    return result
