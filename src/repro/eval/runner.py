"""Command-line experiment runner.

Run any table/figure reproduction from a shell::

    python -m repro.eval.runner table2
    python -m repro.eval.runner fig3 --scale 0.1 --seed 7
    python -m repro.eval.runner all

``all`` runs every experiment at its default (laptop-sized) scale and
prints every report -- roughly what ``benchmarks/`` does under
pytest-benchmark, without the timing machinery.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.eval.ablations import run_sampler_ablation, run_similarity_ablation
from repro.eval.churn import run_churn_ablation
from repro.eval.privacy import run_privacy_attack
from repro.eval.tivo_comparison import run_tivo_comparison
from repro.eval.fig3_fig4 import run_fig3, run_fig4
from repro.eval.fig5 import run_fig5
from repro.eval.fig6 import run_fig6
from repro.eval.fig7 import run_fig7
from repro.eval.fig8_fig9 import run_fig8, run_fig9
from repro.eval.fig10 import run_fig10
from repro.eval.fig11_13 import run_fig11, run_fig12, run_fig13
from repro.eval.p2p_bandwidth import run_p2p_bandwidth
from repro.eval.table2 import run_table2
from repro.eval.table3 import run_table3


def _with_scale_seed(fn: Callable, scale: float | None, seed: int) -> object:
    """Invoke an experiment, passing scale/seed when it accepts them."""
    import inspect

    params = inspect.signature(fn).parameters
    kwargs: dict[str, object] = {}
    if "scale" in params and scale is not None:
        kwargs["scale"] = scale
    if "seed" in params:
        kwargs["seed"] = seed
    return fn(**kwargs)


EXPERIMENTS: dict[str, Callable] = {
    "table2": run_table2,
    "table3": run_table3,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "p2p": run_p2p_bandwidth,
    "ablation-sampler": run_sampler_ablation,
    "ablation-similarity": run_similarity_ablation,
    "ablation-churn": run_churn_ablation,
    "tivo": run_tivo_comparison,
    "privacy": run_privacy_attack,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.eval.runner",
        description="Reproduce a HyRec table or figure.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--scale", type=float, default=None, help="workload scale factor"
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.perf_counter()
        result = _with_scale_seed(EXPERIMENTS[name], args.scale, args.seed)
        elapsed = time.perf_counter() - start
        print(result.format_report())
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
