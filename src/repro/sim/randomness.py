"""Reproducible random streams.

Every stochastic component in the repository (trace generators, the
HyRec sampler's random-user injection, gossip view shuffles, queueing
arrivals) receives its own :class:`random.Random` derived from a single
experiment seed plus a string label.  Two experiments with the same
seed therefore replay identically even if one of them adds extra draws
to an unrelated component.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

RngOrSeed = Union[random.Random, int, None]


def derive_seed(seed: int, label: str) -> int:
    """Derive a 64-bit child seed from ``(seed, label)``.

    Uses SHA-256 so that nearby parent seeds yield unrelated children
    (``random.Random(seed + 1)`` streams are famously correlated for
    some generators; hashing sidesteps the issue entirely).
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def make_rng(seed: RngOrSeed = None) -> random.Random:
    """Coerce ``seed`` into a :class:`random.Random` instance.

    ``None`` produces an OS-seeded generator (only appropriate in
    examples; experiments must pass explicit seeds).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def derive_rng(seed: int, label: str) -> random.Random:
    """A fresh generator for the sub-stream identified by ``label``."""
    return random.Random(derive_seed(seed, label))
