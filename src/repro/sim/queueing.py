"""Multi-worker request-queue model (Figure 9's concurrency sweeps).

The paper stresses the HyRec and CRec front-ends with Apache ``ab``:
a *closed loop* of C concurrent clients, each firing its next request
as soon as the previous response arrives.  This module simulates that
loop with the discrete-event engine: one FIFO queue, W worker threads,
deterministic or randomised service times.

For C <= W the mean response time equals the service time; beyond the
saturation point it grows linearly as ``C * s / W`` -- exactly the
hockey-stick shape of Figure 9.  ``tests/test_queueing.py`` checks the
simulator against this closed-form law.
"""

from __future__ import annotations

import statistics
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs.timing import nearest_rank
from repro.sim.events import Simulator


@dataclass
class RequestStats:
    """Aggregate latency statistics for one load-generation run."""

    response_times: list[float] = field(default_factory=list)
    completed: int = 0
    duration: float = 0.0

    @property
    def mean(self) -> float:
        """Mean response time in seconds (0 if nothing completed)."""
        if not self.response_times:
            return 0.0
        return statistics.fmean(self.response_times)

    @property
    def p95(self) -> float:
        """95th-percentile response time in seconds."""
        if not self.response_times:
            return 0.0
        return nearest_rank(sorted(self.response_times), 0.95)

    @property
    def throughput(self) -> float:
        """Completed requests per second of simulated time."""
        if self.duration <= 0:
            return 0.0
        return self.completed / self.duration


class QueueingServer:
    """A FIFO queue served by a fixed pool of workers.

    ``service_time_fn`` is called once per request (receiving the
    request's sequence number) and must return the service time in
    seconds -- typically derived from a server model such as
    :meth:`repro.baselines.crec.CRecFrontend.service_time`.
    """

    def __init__(self, workers: int, service_time_fn: Callable[[int], float]) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.service_time_fn = service_time_fn

    def run_closed_loop(
        self,
        concurrency: int,
        total_requests: int,
        simulator: Optional[Simulator] = None,
    ) -> RequestStats:
        """Simulate ``concurrency`` clients issuing ``total_requests``.

        Clients have zero think time (``ab`` semantics): each issues a
        new request the moment its previous response arrives, until the
        global request budget is exhausted.
        """
        if concurrency < 1:
            raise ValueError("concurrency must be at least one")
        if total_requests < 1:
            raise ValueError("need at least one request")

        sim = simulator if simulator is not None else Simulator()
        stats = RequestStats()
        pending: deque[tuple[float, int]] = deque()  # (arrival time, seq)
        idle_workers = [self.workers]  # boxed mutable int
        issued = [0]
        start_time = sim.clock.now

        def finish(arrival: float) -> None:
            stats.response_times.append(sim.clock.now - arrival)
            stats.completed += 1
            issue_next()
            if pending:
                serve(*pending.popleft())
            else:
                idle_workers[0] += 1

        def serve(arrival: float, seq: int) -> None:
            service = self.service_time_fn(seq)
            if service < 0:
                raise ValueError("service time cannot be negative")
            sim.schedule(service, lambda: finish(arrival), label="finish")

        def handle_arrival(seq: int) -> None:
            arrival = sim.clock.now
            if idle_workers[0] > 0:
                idle_workers[0] -= 1
                serve(arrival, seq)
            else:
                pending.append((arrival, seq))

        def issue_next() -> None:
            if issued[0] >= total_requests:
                return
            seq = issued[0]
            issued[0] += 1
            sim.schedule(0.0, lambda: handle_arrival(seq), label="arrival")

        for _ in range(min(concurrency, total_requests)):
            issue_next()
        sim.run()

        stats.duration = sim.clock.now - start_time
        return stats
