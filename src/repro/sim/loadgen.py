"""``ab``-style load generator.

The paper uses Apache's ``ab`` benchmark tool to average the response
time of 1000 requests (Figure 8) and to sweep the number of concurrent
requests (Figure 9).  :class:`LoadGenerator` reproduces both modes on
top of the :mod:`repro.sim.queueing` model, given any *server model*
that exposes a per-request service time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sim.queueing import QueueingServer, RequestStats


@dataclass(frozen=True)
class LoadResult:
    """Outcome of one load-generation run."""

    concurrency: int
    requests: int
    mean_response_s: float
    p95_response_s: float
    throughput_rps: float

    @property
    def mean_response_ms(self) -> float:
        return self.mean_response_s * 1e3


class LoadGenerator:
    """Closed-loop load generator against a service-time model.

    ``service_time_fn`` receives the request sequence number and
    returns the server-side processing time in seconds.  ``workers``
    is the size of the server's thread pool (the paper's front-ends
    run on an 8-core PowerEdge, so 8 is the natural default).
    """

    def __init__(
        self,
        service_time_fn: Callable[[int], float],
        workers: int = 8,
    ) -> None:
        self._server = QueueingServer(workers, service_time_fn)

    def run(self, requests: int = 1000, concurrency: int = 1) -> LoadResult:
        """Issue ``requests`` requests at the given ``concurrency``."""
        stats: RequestStats = self._server.run_closed_loop(
            concurrency=concurrency, total_requests=requests
        )
        return LoadResult(
            concurrency=concurrency,
            requests=requests,
            mean_response_s=stats.mean,
            p95_response_s=stats.p95,
            throughput_rps=stats.throughput,
        )

    def sweep_concurrency(
        self, concurrencies: list[int], requests_per_point: int = 200
    ) -> list[LoadResult]:
        """Run one load test per concurrency level (Figure 9 sweep)."""
        return [
            self.run(requests=requests_per_point, concurrency=level)
            for level in concurrencies
        ]
