"""``ab``-style load generators.

The paper uses Apache's ``ab`` benchmark tool to average the response
time of 1000 requests (Figure 8) and to sweep the number of concurrent
requests (Figure 9).  :class:`LoadGenerator` reproduces both modes on
top of the :mod:`repro.sim.queueing` model, given any *server model*
that exposes a per-request service time.

:class:`ClusterLoadGenerator` is the measured twin: instead of feeding
a queueing model with service-time samples, it drives *real* requests
through a live :class:`~repro.core.system.HyRecSystem` and reads the
wall clock -- the Figure 8/9 concurrency sweep as an actual multi-shard
scenario rather than a simulation of one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.obs.timing import nearest_rank
from repro.sim.queueing import QueueingServer, RequestStats

if TYPE_CHECKING:
    from repro.core.system import HyRecSystem


@dataclass(frozen=True)
class LoadResult:
    """Outcome of one load-generation run."""

    concurrency: int
    requests: int
    mean_response_s: float
    p95_response_s: float
    throughput_rps: float

    @property
    def mean_response_ms(self) -> float:
        return self.mean_response_s * 1e3


class LoadGenerator:
    """Closed-loop load generator against a service-time model.

    ``service_time_fn`` receives the request sequence number and
    returns the server-side processing time in seconds.  ``workers``
    is the size of the server's thread pool (the paper's front-ends
    run on an 8-core PowerEdge, so 8 is the natural default).
    """

    def __init__(
        self,
        service_time_fn: Callable[[int], float],
        workers: int = 8,
    ) -> None:
        self._server = QueueingServer(workers, service_time_fn)

    def run(self, requests: int = 1000, concurrency: int = 1) -> LoadResult:
        """Issue ``requests`` requests at the given ``concurrency``."""
        stats: RequestStats = self._server.run_closed_loop(
            concurrency=concurrency, total_requests=requests
        )
        return LoadResult(
            concurrency=concurrency,
            requests=requests,
            mean_response_s=stats.mean,
            p95_response_s=stats.p95,
            throughput_rps=stats.throughput,
        )

    def sweep_concurrency(
        self, concurrencies: list[int], requests_per_point: int = 200
    ) -> list[LoadResult]:
        """Run one load test per concurrency level (Figure 9 sweep)."""
        return [
            self.run(requests=requests_per_point, concurrency=level)
            for level in concurrencies
        ]


class ClusterLoadGenerator:
    """Measured closed-loop load against a live :class:`HyRecSystem`.

    ``ab -c C`` keeps a window of C requests in flight; this generator
    models that window as *waves* of C requests admitted together via
    :meth:`~repro.core.system.HyRecSystem.request_batch` -- which on
    the sharded engine is exactly what the
    :class:`~repro.cluster.BatchScheduler` coalesces into one batched
    kernel invocation per shard.  Response times and throughput come
    from the wall clock, not a service-time model, so shard counts,
    executors and batch windows show their real cost.

    Every request in a wave observes the wave's completion time (the
    batch resolves together), which is the conservative closed-loop
    reading of per-request latency.
    """

    def __init__(self, system: "HyRecSystem", user_ids: Sequence[int]) -> None:
        if not user_ids:
            raise ValueError("need at least one user to draw requests from")
        self._system = system
        self._users = list(user_ids)
        self._cursor = 0

    def _next_wave(self, size: int) -> list[int]:
        users = self._users
        wave = []
        for _ in range(size):
            wave.append(users[self._cursor % len(users)])
            self._cursor += 1
        return wave

    def run(self, requests: int = 200, concurrency: int = 8) -> LoadResult:
        """Serve ``requests`` real requests in waves of ``concurrency``."""
        if requests < 1:
            raise ValueError("need at least one request")
        if concurrency < 1:
            raise ValueError("concurrency must be at least one")
        wave_times: list[tuple[float, int]] = []  # (seconds, wave size)
        served = 0
        total = 0.0
        while served < requests:
            wave = self._next_wave(min(concurrency, requests - served))
            start = time.perf_counter()
            self._system.request_batch(wave)
            elapsed = time.perf_counter() - start
            wave_times.append((elapsed, len(wave)))
            total += elapsed
            served += len(wave)
        per_request = sorted(
            elapsed for elapsed, size in wave_times for _ in range(size)
        )
        p95 = nearest_rank(per_request, 0.95)
        return LoadResult(
            concurrency=concurrency,
            requests=served,
            mean_response_s=sum(e * s for e, s in wave_times) / served,
            p95_response_s=p95,
            throughput_rps=served / total if total > 0 else 0.0,
        )

    def sweep_concurrency(
        self, concurrencies: list[int], requests_per_point: int = 200
    ) -> list[LoadResult]:
        """One measured load run per concurrency level."""
        return [
            self.run(requests=requests_per_point, concurrency=level)
            for level in concurrencies
        ]
