"""Deterministic discrete-event simulator.

The gossip baselines (peer sampling cycles every simulated minute), the
queueing model behind Figure 9, and HyRec's inter-request bound variant
(``IR=7`` in Figure 3) all need an event queue.  This is a classic
heap-based scheduler; ties are broken by insertion order so a given
seed always yields an identical execution.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.sim.clock import SimClock


@dataclass(order=True, frozen=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` which gives FIFO ordering among
    events scheduled for the same instant.
    """

    time: float
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)


class EventQueue:
    """A min-heap of :class:`Event` objects with cancellation support."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._cancelled: set[int] = set()
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def push(self, time: float, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``action`` at absolute ``time`` and return the event."""
        event = Event(time=time, seq=next(self._counter), action=action, label=label)
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Mark ``event`` so it is skipped when popped (lazy deletion)."""
        self._cancelled.add(event.seq)

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.seq in self._cancelled:
                self._cancelled.discard(event.seq)
                continue
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event without removing it."""
        while self._heap and self._heap[0].seq in self._cancelled:
            event = heapq.heappop(self._heap)
            self._cancelled.discard(event.seq)
        if self._heap:
            return self._heap[0].time
        return None


class Simulator:
    """Drives an :class:`EventQueue` against a :class:`SimClock`.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append("a"))
    >>> _ = sim.at(3.0, lambda: fired.append("b"))
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.clock.now
    5.0
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.queue = EventQueue()
        self._events_processed = 0

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    def schedule(
        self, delay: float, action: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past: delay={delay}")
        return self.queue.push(self.clock.now + delay, action, label)

    def at(self, time: float, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``action`` at absolute simulated ``time``."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past: time={time}, now={self.clock.now}"
            )
        return self.queue.push(time, action, label)

    def every(
        self,
        period: float,
        action: Callable[[], Any],
        label: str = "",
        start: Optional[float] = None,
        until: Optional[float] = None,
    ) -> None:
        """Schedule ``action`` periodically.

        The first firing happens at ``start`` (default: one period from
        now).  Recurrence stops once the next firing would exceed
        ``until``.
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        first = start if start is not None else self.clock.now + period

        def fire() -> None:
            action()
            next_time = self.clock.now + period
            if until is None or next_time <= until:
                self.queue.push(next_time, fire, label)

        self.at(first, fire, label)

    def step(self) -> bool:
        """Execute the next event; return ``False`` if the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        event.action()
        self._events_processed += 1
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events``); return count run."""
        count = 0
        while max_events is None or count < max_events:
            if not self.step():
                break
            count += 1
        return count

    def run_until(self, time: float) -> int:
        """Run all events with timestamp <= ``time``; advance clock to it."""
        count = 0
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > time:
                break
            self.step()
            count += 1
        if time > self.clock.now:
            self.clock.advance_to(time)
        return count
