"""Virtual clock for trace replay and protocol simulation.

All HyRec experiments replay timestamped rating traces (Section 5.2 of
the paper replays "the rating activity of each user over time").  The
clock is a plain float of *simulated seconds* since the start of the
trace; these helpers keep unit conversions readable and in one place.
"""

from __future__ import annotations

#: Seconds in one simulated minute / hour / day / week.
MINUTE: float = 60.0
HOUR: float = 60.0 * MINUTE
DAY: float = 24.0 * HOUR
WEEK: float = 7.0 * DAY


class SimClock:
    """A monotonically advancing virtual clock.

    The clock only ever moves forward.  Attempting to move it backwards
    raises ``ValueError`` -- replay drivers rely on this to catch
    unsorted traces early.

    >>> clock = SimClock()
    >>> clock.advance_to(10.0)
    >>> clock.now
    10.0
    >>> clock.advance(5.0)
    >>> clock.now
    15.0
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before zero, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock to an absolute ``timestamp``.

        Raises ``ValueError`` if ``timestamp`` lies in the past.
        """
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now}, "
                f"requested={timestamp}"
            )
        self._now = float(timestamp)

    def advance(self, delta: float) -> None:
        """Move the clock forward by ``delta`` seconds."""
        if delta < 0:
            raise ValueError(f"cannot advance by negative delta {delta}")
        self._now += float(delta)

    @property
    def days(self) -> float:
        """Current time expressed in simulated days."""
        return self._now / DAY

    @property
    def hours(self) -> float:
        """Current time expressed in simulated hours."""
        return self._now / HOUR

    @property
    def minutes(self) -> float:
        """Current time expressed in simulated minutes."""
        return self._now / MINUTE

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.3f}s / day {self.days:.2f})"
