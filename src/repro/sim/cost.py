"""EC2 cost model behind Table 3 ("Economic advantage of HyRec").

Section 5.4 of the paper prices two deployments on Amazon EC2 (2014
price list):

* **Front-end** (both HyRec and the centralized alternative): the
  cheapest medium-utilization reserved instance, ~$681 per year.
* **Back-end** (centralized Offline-CRec only): a midrange
  compute-optimized *on-demand* instance at $0.6 per hour, billed for
  the duration of each periodic KNN-selection run -- or, when cheaper,
  a compute-optimized *reserved* instance for a full year (the paper
  uses this for ML3, capping the saving at 49.2%).

HyRec has no back-end at all (clients do the KNN work), so the
fraction of the total yearly bill the content provider saves is

    reduction = backend / (frontend + backend).

The reserved back-end price is not stated explicitly in the paper; we
recover it from the ML3 row of Table 3: a 49.2% cap implies
``backend_reserved = 0.492 / (1 - 0.492) * 681 ~= $659.5``.  The same
algebra applied to the other rows recovers the wall-clock time of one
Offline-CRec KNN run per dataset; those are the
:data:`PAPER_CREC_WALLTIME_S` calibration constants used when a bench
wants paper-scale numbers instead of locally measured ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import DAY, HOUR

#: Seconds in the 365-day billing year used throughout Section 5.4.
YEAR: float = 365.0 * DAY


@dataclass(frozen=True)
class Ec2Pricing:
    """Price constants for the cost model.

    Attributes:
        frontend_reserved_per_year: Yearly price of the front-end
            reserved instance (runs 24/7 in both architectures).
        backend_on_demand_per_hour: Hourly price of the on-demand
            back-end instance used for periodic KNN selection.
        backend_reserved_per_year: Yearly price of a reserved
            compute-optimized back-end (chosen when cheaper than
            on-demand, which caps HyRec's saving).
        billing_granularity_s: Smallest billable unit of on-demand
            time.  The paper's numbers are consistent with fractional
            (per-second) billing, so the default is one second; set to
            3600 for classic 2014 round-up-to-the-hour billing.
    """

    frontend_reserved_per_year: float = 681.0
    backend_on_demand_per_hour: float = 0.6
    backend_reserved_per_year: float = 659.5
    billing_granularity_s: float = 1.0

    def __post_init__(self) -> None:
        if self.frontend_reserved_per_year <= 0:
            raise ValueError("front-end price must be positive")
        if self.backend_on_demand_per_hour <= 0:
            raise ValueError("on-demand price must be positive")
        if self.backend_reserved_per_year <= 0:
            raise ValueError("reserved back-end price must be positive")
        if self.billing_granularity_s <= 0:
            raise ValueError("billing granularity must be positive")


#: The paper's own price points.
PAPER_PRICING = Ec2Pricing()

#: Wall-clock seconds of one Offline-CRec KNN-selection run per
#: dataset, recovered from Table 3 (see module docstring).  Used by the
#: Table 3 bench when asked for paper-calibrated rather than locally
#: measured back-end times.
PAPER_CREC_WALLTIME_S: dict[str, float] = {
    "ML1": 2100.0,
    "ML2": 10150.0,
    "ML3": 36000.0,
    "Digg": 140.0,
}


@dataclass(frozen=True)
class BackendDeployment:
    """The cheaper of the two back-end deployment options."""

    kind: str  # "on-demand" or "reserved"
    annual_cost: float
    runs_per_year: float
    billed_hours_per_run: float


class CostModel:
    """Annual-cost arithmetic for centralized-vs-HyRec deployments."""

    def __init__(self, pricing: Ec2Pricing = PAPER_PRICING) -> None:
        self.pricing = pricing

    def billed_seconds(self, wall_clock_s: float) -> float:
        """Round one run's wall-clock time up to the billing unit."""
        if wall_clock_s < 0:
            raise ValueError("wall-clock time cannot be negative")
        unit = self.pricing.billing_granularity_s
        units = -(-wall_clock_s // unit)  # ceiling division
        return units * unit

    def backend_deployment(
        self, knn_wall_clock_s: float, period_s: float
    ) -> BackendDeployment:
        """Pick the cheaper back-end for a given KNN period.

        ``knn_wall_clock_s`` is the duration of one full KNN-selection
        pass; ``period_s`` is how often the centralized architecture
        re-runs it (48h/24h/12h for MovieLens, 12h/6h/2h for Digg in
        Table 3).
        """
        if period_s <= 0:
            raise ValueError("period must be positive")
        runs_per_year = YEAR / period_s
        billed_hours = self.billed_seconds(knn_wall_clock_s) / HOUR
        on_demand = (
            runs_per_year * billed_hours * self.pricing.backend_on_demand_per_hour
        )
        reserved = self.pricing.backend_reserved_per_year
        if on_demand <= reserved:
            return BackendDeployment(
                kind="on-demand",
                annual_cost=on_demand,
                runs_per_year=runs_per_year,
                billed_hours_per_run=billed_hours,
            )
        return BackendDeployment(
            kind="reserved",
            annual_cost=reserved,
            runs_per_year=runs_per_year,
            billed_hours_per_run=billed_hours,
        )

    def centralized_annual_cost(
        self, knn_wall_clock_s: float, period_s: float
    ) -> float:
        """Front-end plus back-end yearly bill of the offline solution."""
        backend = self.backend_deployment(knn_wall_clock_s, period_s)
        return self.pricing.frontend_reserved_per_year + backend.annual_cost

    def hyrec_annual_cost(self) -> float:
        """HyRec's yearly bill: the front-end only."""
        return self.pricing.frontend_reserved_per_year

    def cost_reduction(self, knn_wall_clock_s: float, period_s: float) -> float:
        """Fraction of the centralized bill HyRec saves (Table 3 cells)."""
        centralized = self.centralized_annual_cost(knn_wall_clock_s, period_s)
        return 1.0 - self.hyrec_annual_cost() / centralized

    def max_cost_reduction(self) -> float:
        """The reserved-back-end cap on savings (49.2% in the paper)."""
        reserved = self.pricing.backend_reserved_per_year
        return reserved / (self.pricing.frontend_reserved_per_year + reserved)
