"""Simulation substrate: virtual time, discrete events, devices, cost.

This package provides everything HyRec's evaluation needs that the
paper obtained from physical hardware and cloud pricing:

* :mod:`repro.sim.clock` -- a virtual clock with calendar helpers.
* :mod:`repro.sim.events` -- a deterministic discrete-event simulator.
* :mod:`repro.sim.randomness` -- reproducible random-stream derivation.
* :mod:`repro.sim.devices` -- calibrated laptop / smartphone / server
  models with CPU-load interference (Figures 11-13).
* :mod:`repro.sim.queueing` -- a multi-worker request-queue model used
  for the concurrency sweeps of Figure 9.
* :mod:`repro.sim.loadgen` -- an ``ab``-style closed-loop load
  generator (Figures 8-9).
* :mod:`repro.sim.cost` -- the EC2 cost arithmetic behind Table 3.
"""

from repro.sim.clock import SimClock, DAY, HOUR, MINUTE, WEEK
from repro.sim.events import Event, EventQueue, Simulator
from repro.sim.randomness import derive_rng, derive_seed, make_rng
from repro.sim.devices import (
    CpuLoad,
    Device,
    DeviceSpec,
    LAPTOP,
    SERVER,
    SMARTPHONE,
    widget_op_count,
)
from repro.sim.queueing import QueueingServer, RequestStats
from repro.sim.loadgen import LoadGenerator, LoadResult
from repro.sim.cost import (
    BackendDeployment,
    CostModel,
    Ec2Pricing,
    PAPER_PRICING,
)

__all__ = [
    "SimClock",
    "DAY",
    "HOUR",
    "MINUTE",
    "WEEK",
    "Event",
    "EventQueue",
    "Simulator",
    "derive_rng",
    "derive_seed",
    "make_rng",
    "CpuLoad",
    "Device",
    "DeviceSpec",
    "LAPTOP",
    "SERVER",
    "SMARTPHONE",
    "widget_op_count",
    "QueueingServer",
    "RequestStats",
    "LoadGenerator",
    "LoadResult",
    "BackendDeployment",
    "CostModel",
    "Ec2Pricing",
    "PAPER_PRICING",
]
