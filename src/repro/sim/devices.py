"""Calibrated device models for client- and server-side experiments.

The paper measures the HyRec widget on three physical machines:

* a PowerEdge 2950 III server (Bi Quad Core 2.5GHz, 32GB) -- the HyRec
  server in Figures 8-10;
* a Dell Latitude E4310 laptop (Bi Quad Core 2.67GHz, 4GB, Firefox) --
  the "laptop" curves of Figures 11-13;
* a Wiko Cink King smartphone (Android, Wi-Fi) -- the "smartphone"
  curves of Figures 12-13.

We cannot ship those machines, so this module provides *calibrated
models*: a device executes a personalization job in

    time = (task_overhead + op_count / ops_per_second) * (1 + s * load)

where ``op_count`` is the exact number of similarity/popularity
primitive operations the real widget performs on the job (computed by
:func:`widget_op_count` from the actual candidate-set and profile
sizes), ``task_overhead`` captures the per-job fixed cost (JSON parse,
JS engine dispatch, DOM update), and ``s`` is the device's sensitivity
to background CPU load.

Calibration targets, taken from the paper:

* Figure 13 -- from profile size 10 to 500 the widget time grows by
  less than x1.5 on the laptop and x7.2 on the smartphone;
* Figure 12 -- at 50% CPU load and profile size 100, the widget runs in
  under 10ms on the laptop and under 60ms on the smartphone;
* Figure 12 -- laptop time grows only slowly with CPU load.

The constants below satisfy all three simultaneously (see
``tests/test_devices.py`` which asserts each target).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class DeviceSpec:
    """Static performance characteristics of a device.

    Attributes:
        name: Human-readable device name.
        ops_per_second: Throughput of widget primitive operations
            (profile-entry comparisons / popularity increments).
        task_overhead_s: Fixed per-personalization-job cost in seconds.
        load_sensitivity: Slope of the slowdown multiplier versus
            background CPU load (``1 + load_sensitivity * load``).
        cores: Number of CPU cores (used by the interference model of
            Figure 11 and the map-reduce worker model).
        network_mbps: Access-link bandwidth in megabits per second.
    """

    name: str
    ops_per_second: float
    task_overhead_s: float
    load_sensitivity: float
    cores: int
    network_mbps: float

    def __post_init__(self) -> None:
        if self.ops_per_second <= 0:
            raise ValueError("ops_per_second must be positive")
        if self.task_overhead_s < 0:
            raise ValueError("task_overhead_s cannot be negative")
        if not 0 <= self.load_sensitivity:
            raise ValueError("load_sensitivity cannot be negative")
        if self.cores < 1:
            raise ValueError("a device needs at least one core")


#: Dell Latitude E4310 (Firefox over Ethernet) stand-in.
LAPTOP = DeviceSpec(
    name="laptop",
    ops_per_second=48.1e6,
    task_overhead_s=7.25e-3,
    load_sensitivity=0.30,
    cores=8,
    network_mbps=100.0,
)

#: Wiko Cink King (Android browser over Wi-Fi) stand-in.
SMARTPHONE = DeviceSpec(
    name="smartphone",
    ops_per_second=1.52e6,
    task_overhead_s=16.3e-3,
    load_sensitivity=0.60,
    cores=2,
    network_mbps=20.0,
)

#: PowerEdge 2950 III stand-in (the HyRec / CRec server host).
SERVER = DeviceSpec(
    name="server",
    ops_per_second=150e6,
    task_overhead_s=0.2e-3,
    load_sensitivity=0.0,
    cores=8,
    network_mbps=1000.0,
)


def widget_op_count(
    user_profile_size: int,
    candidate_profile_sizes: Iterable[int],
) -> int:
    """Primitive-operation count of one personalization job.

    KNN selection (Algorithm 1) touches every entry of the user profile
    and of each candidate profile once per similarity computation; item
    recommendation (Algorithm 2) walks every candidate profile entry
    again to count popularity.  The returned count is therefore

        sum over candidates c of (|Pu| + 2 * |Pc|)

    which is exactly proportional to the work the real JavaScript
    widget performs.
    """
    if user_profile_size < 0:
        raise ValueError("profile size cannot be negative")
    total = 0
    for size in candidate_profile_sizes:
        if size < 0:
            raise ValueError("profile size cannot be negative")
        total += user_profile_size + 2 * size
    return total


class CpuLoad:
    """Background CPU load in ``[0, 1]`` (the paper's stress / antutu)."""

    __slots__ = ("_value",)

    def __init__(self, value: float = 0.0) -> None:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"CPU load must be within [0, 1], got {value}")
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"CpuLoad({self._value:.0%})"


class Device:
    """A device instance executing widget tasks under optional load."""

    def __init__(self, spec: DeviceSpec, load: CpuLoad | float = 0.0) -> None:
        self.spec = spec
        self.load = load if isinstance(load, CpuLoad) else CpuLoad(load)

    def slowdown(self) -> float:
        """Multiplier applied to task time under the current load."""
        return 1.0 + self.spec.load_sensitivity * self.load.value

    def task_time(self, op_count: int) -> float:
        """Seconds to run a widget task of ``op_count`` primitive ops."""
        if op_count < 0:
            raise ValueError("op_count cannot be negative")
        base = self.spec.task_overhead_s + op_count / self.spec.ops_per_second
        return base * self.slowdown()

    def widget_time(
        self,
        user_profile_size: int,
        candidate_profile_sizes: Iterable[int],
    ) -> float:
        """Seconds for one full personalization job on this device."""
        ops = widget_op_count(user_profile_size, candidate_profile_sizes)
        return self.task_time(ops)

    def transfer_time(self, num_bytes: int) -> float:
        """Seconds to move ``num_bytes`` over the device's access link."""
        if num_bytes < 0:
            raise ValueError("num_bytes cannot be negative")
        bits = num_bytes * 8
        return bits / (self.spec.network_mbps * 1e6)

    def __repr__(self) -> str:
        return f"Device({self.spec.name}, load={self.load.value:.0%})"
