"""Epidemic KNN clustering (Vicinity [50] / Gossple [19] style).

Each node keeps a *cluster view* of its k most similar peers found so
far.  Once per cycle (Section 2.3 of the paper):

    "each user, u, exchanges information with one of the users, say v,
    in her current KNN approximation.  Users u and v exchange their k
    nearest neighbors (along with the associated profiles) and each of
    them merges it with an additional random sample obtaining a
    candidate set.  Each of them then computes her similarity with
    each user in her candidate set and selects the most similar ones."

Profiles travel with the descriptors, which is what makes the P2P
baseline's bandwidth two to three orders of magnitude larger than
HyRec's (Section 5.6): every exchange ships ~2k profiles, every
minute, whether or not anybody asked for a recommendation.
"""

from __future__ import annotations

from typing import Callable

from repro.core.knn import knn_select
from repro.core.similarity import SetMetric, cosine
from repro.gossip.peer_sampling import PeerSamplingService
from repro.sim.randomness import make_rng, RngOrSeed

#: Callback giving the current liked-set of a node (profiles live on
#: the nodes themselves; the overlay only knows how to fetch them).
ProfileProvider = Callable[[int], frozenset[int]]


class ClusteringNode:
    """One node's KNN view: ordered peer ids, best first."""

    def __init__(self, node_id: int, k: int) -> None:
        self.node_id = node_id
        self.k = k
        self.neighbors: list[int] = []
        self.exchanges_initiated = 0

    def view_set(self) -> set[int]:
        return set(self.neighbors)


class ClusteringOverlay:
    """All clustering nodes plus the per-cycle exchange protocol."""

    def __init__(
        self,
        profile_provider: ProfileProvider,
        peer_sampling: PeerSamplingService,
        k: int = 10,
        random_sample_size: int | None = None,
        metric: SetMetric = cosine,
        seed: RngOrSeed = 0,
    ) -> None:
        self.profile_provider = profile_provider
        self.peer_sampling = peer_sampling
        self.k = k
        self.random_sample_size = (
            random_sample_size if random_sample_size is not None else k
        )
        self.metric = metric
        self.rng = make_rng(seed)
        self.nodes: dict[int, ClusteringNode] = {}
        #: Nodes currently offline (churn): they keep their local view
        #: -- it lives on their machine -- but take no part in cycles,
        #: and online peers treat them as unreachable.
        self.suspended: set[int] = set()
        self.cycles_run = 0
        #: (initiator, partner, ids sent, ids received) per exchange of
        #: the last cycle -- the bandwidth meter hooks in here: each id
        #: travels with its full profile (Section 2.3: "exchange their
        #: k nearest neighbors along with the associated profiles").
        self.last_cycle_exchanges: list[tuple[int, int, list[int], list[int]]] = []

    # --- membership -----------------------------------------------------------

    def add_node(self, node_id: int) -> ClusteringNode:
        """Join the clustering layer (and the peer sampling one)."""
        if node_id in self.nodes:
            return self.nodes[node_id]
        self.peer_sampling.add_node(node_id)
        node = ClusteringNode(node_id, self.k)
        # Bootstrap the cluster view from random peers.
        node.neighbors = [
            nid
            for nid in self.peer_sampling.nodes[node_id].random_peers(
                self.k, self.rng
            )
            if nid != node_id
        ]
        self.nodes[node_id] = node
        return node

    def remove_node(self, node_id: int) -> None:
        """Leave both layers permanently (state discarded)."""
        self.nodes.pop(node_id, None)
        self.suspended.discard(node_id)
        self.peer_sampling.remove_node(node_id)

    def suspend_node(self, node_id: int) -> None:
        """Take a node offline: its own view survives on its machine,
        but the overlay stops routing to it (churn, Section 2.3)."""
        if node_id in self.nodes:
            self.suspended.add(node_id)
            self.peer_sampling.remove_node(node_id)

    def resume_node(self, node_id: int) -> None:
        """Bring a suspended node back online.

        Its clustering view is whatever it had when it left (possibly
        referencing peers that are now gone); its peer-sampling view is
        re-bootstrapped, as a returning client would re-join.
        """
        if node_id in self.nodes and node_id in self.suspended:
            self.suspended.discard(node_id)
            self.peer_sampling.add_node(node_id)

    def is_online(self, node_id: int) -> bool:
        """Whether a member currently participates in gossip."""
        return node_id in self.nodes and node_id not in self.suspended

    # --- protocol ---------------------------------------------------------------

    def cycle(self) -> int:
        """One clustering cycle over all nodes; returns exchange count.

        The peer-sampling layer runs its own cycle first, exactly like
        the layered deployments of [50] and [19].
        """
        self.peer_sampling.cycle()
        self.last_cycle_exchanges = []
        order = [nid for nid in self.nodes if nid not in self.suspended]
        self.rng.shuffle(order)
        for node_id in order:
            node = self.nodes.get(node_id)
            if node is None or node_id in self.suspended:
                continue
            partner_id = self._select_partner(node)
            if partner_id is None:
                continue
            partner = self.nodes.get(partner_id)
            if partner is None or partner_id in self.suspended:
                # Unreachable peer: evict it from the cluster view, the
                # way a real node reacts to a timed-out exchange.
                node.neighbors = [n for n in node.neighbors if n != partner_id]
                continue
            sent, received = self._exchange(node, partner)
            node.exchanges_initiated += 1
            self.last_cycle_exchanges.append((node_id, partner_id, sent, received))
        self.cycles_run += 1
        return len(self.last_cycle_exchanges)

    def _select_partner(self, node: ClusteringNode) -> int | None:
        """Prefer a cluster neighbor; fall back to a random peer."""
        if node.neighbors:
            return node.neighbors[self.rng.randrange(len(node.neighbors))]
        peers = self.peer_sampling.nodes[node.node_id].random_peers(1, self.rng)
        return peers[0] if peers else None

    def _exchange(
        self, node: ClusteringNode, partner: ClusteringNode
    ) -> tuple[list[int], list[int]]:
        """Symmetric view exchange; returns (ids sent, ids received).

        Each side ships its package plus its own descriptor+profile.
        """
        node_package = self._package(node)
        partner_package = self._package(partner)
        self._merge(node, partner_package | {partner.node_id})
        self._merge(partner, node_package | {node.node_id})
        sent = sorted(node_package | {node.node_id})
        received = sorted(partner_package | {partner.node_id})
        return sent, received

    def _package(self, node: ClusteringNode) -> set[int]:
        """What a node sends: its KNN view plus a random sample."""
        package = set(node.neighbors)
        package.update(
            self.peer_sampling.nodes[node.node_id].random_peers(
                self.random_sample_size, self.rng
            )
        )
        package.discard(node.node_id)
        return package

    def _merge(self, node: ClusteringNode, candidates: set[int]) -> None:
        """Keep the k most similar users out of view + candidates.

        Suspended (offline) peers are not admissible: a P2P node can
        only cluster with peers it can actually reach -- the exact
        limitation Section 2.4 says HyRec avoids by letting the server
        keep offline users in the KNN table.
        """
        pool = candidates | node.view_set()
        pool.discard(node.node_id)
        live = {
            nid for nid in pool if nid in self.nodes and nid not in self.suspended
        }
        own_profile = self.profile_provider(node.node_id)
        ranked = knn_select(
            own_profile,
            {nid: self.profile_provider(nid) for nid in live},
            k=self.k,
            metric=self.metric,
            exclude=node.node_id,
        )
        node.neighbors = [n.user_id for n in ranked]

    # --- introspection ------------------------------------------------------------

    def knn_table(self) -> dict[int, list[int]]:
        """Current node id -> neighbor list, for quality metrics."""
        return {nid: list(node.neighbors) for nid, node in self.nodes.items()}
