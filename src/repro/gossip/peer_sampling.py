"""Gossip-based peer sampling (Jelasity, Voulgaris, Guerraoui,
Kermarrec, van Steen -- ACM TOCS 2007, reference [35] of the paper).

Every node keeps a *partial view*: a fixed-capacity list of
``(node id, age)`` descriptors.  Once per cycle a node:

1. picks the *oldest* descriptor in its view as the gossip partner
   (tail policy -- ages out dead peers quickly),
2. sends the partner half of its view plus a fresh descriptor of
   itself,
3. receives the partner's half-view in exchange,
4. merges: discard duplicates, keep the freshest descriptor per node,
   truncate back to capacity preferring fresh entries (healer
   behaviour, parameter H).

The resulting overlay approximates a uniform random graph, which is
the topology the paper assumes for decentralized recommenders
(Section 2.3).  The clustering layer draws its random candidates from
this service.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from repro.sim.randomness import make_rng, RngOrSeed


@dataclass(frozen=True)
class NodeDescriptor:
    """One entry of a partial view."""

    node_id: int
    age: int = 0

    def aged(self) -> "NodeDescriptor":
        """A copy one cycle older."""
        return replace(self, age=self.age + 1)


class PartialView:
    """Fixed-capacity descriptor list with freshest-wins merge."""

    def __init__(self, capacity: int, descriptors: Iterable[NodeDescriptor] = ()) -> None:
        if capacity < 1:
            raise ValueError("view capacity must be at least 1")
        self.capacity = capacity
        self._by_node: dict[int, NodeDescriptor] = {}
        for descriptor in descriptors:
            self._insert(descriptor)
        self._truncate()

    def _insert(self, descriptor: NodeDescriptor) -> None:
        current = self._by_node.get(descriptor.node_id)
        if current is None or descriptor.age < current.age:
            self._by_node[descriptor.node_id] = descriptor

    @staticmethod
    def _tiebreak(node_id: int) -> int:
        """Deterministic pseudo-random tie-break among equal ages.

        Sorting ties by raw node id would make low-id nodes
        systematically survive truncation, skewing the overlay's
        in-degree distribution; a Knuth-style hash decorrelates
        survival from the id while keeping runs reproducible.
        """
        return (node_id * 2654435761 + 0x9E3779B9) & 0xFFFFFFFF

    def _truncate(self) -> None:
        if len(self._by_node) <= self.capacity:
            return
        keep = sorted(
            self._by_node.values(),
            key=lambda d: (d.age, self._tiebreak(d.node_id)),
        )
        self._by_node = {d.node_id: d for d in keep[: self.capacity]}

    def __len__(self) -> int:
        return len(self._by_node)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._by_node

    def descriptors(self) -> list[NodeDescriptor]:
        """All descriptors, oldest last (stable ordering)."""
        return sorted(self._by_node.values(), key=lambda d: (d.age, d.node_id))

    def node_ids(self) -> list[int]:
        """Node ids currently in the view."""
        return [d.node_id for d in self.descriptors()]

    def oldest(self) -> NodeDescriptor | None:
        """The stalest descriptor (gossip partner selection)."""
        if not self._by_node:
            return None
        return max(self._by_node.values(), key=lambda d: (d.age, -d.node_id))

    def remove(self, node_id: int) -> None:
        """Drop a node (e.g. an unresponsive gossip partner)."""
        self._by_node.pop(node_id, None)

    def increase_age(self) -> None:
        """Age every descriptor by one cycle."""
        self._by_node = {nid: d.aged() for nid, d in self._by_node.items()}

    def merge(
        self,
        incoming: Iterable[NodeDescriptor],
        exclude: int,
        swap_out: set[int] | None = None,
    ) -> None:
        """Freshest-wins merge of ``incoming``, never admitting ``exclude``.

        ``swap_out`` implements Jelasity's *swapper* behaviour (the S
        parameter): when the merged view exceeds capacity, entries the
        node just *sent* are evicted first, making room for what was
        received.  Without it, age-based truncation alone lets
        recently-active nodes flood every view and the in-degree
        distribution grows heavy hubs.
        """
        received: set[int] = set()
        for descriptor in incoming:
            if descriptor.node_id != exclude:
                self._insert(descriptor)
                received.add(descriptor.node_id)
        if swap_out and len(self._by_node) > self.capacity:
            # Evict swapped-out entries (oldest first) that were not
            # re-received, until back at capacity or none remain.
            evictable = sorted(
                (
                    d
                    for d in self._by_node.values()
                    if d.node_id in swap_out and d.node_id not in received
                ),
                key=lambda d: (-d.age, self._tiebreak(d.node_id)),
            )
            for descriptor in evictable:
                if len(self._by_node) <= self.capacity:
                    break
                del self._by_node[descriptor.node_id]
        self._truncate()

    def random_subset(self, count: int, rng) -> list[NodeDescriptor]:
        """Up to ``count`` descriptors chosen uniformly."""
        pool = list(self._by_node.values())
        if count >= len(pool):
            return pool
        return rng.sample(pool, count)


class PeerSamplingNode:
    """One participant of the peer-sampling overlay."""

    def __init__(self, node_id: int, view_size: int) -> None:
        self.node_id = node_id
        self.view = PartialView(view_size)

    def random_peers(self, count: int, rng) -> list[int]:
        """Uniformly sampled peer ids from the current view."""
        return [d.node_id for d in self.view.random_subset(count, rng)]


class PeerSamplingService:
    """The full overlay: nodes plus the per-cycle gossip exchange."""

    def __init__(
        self,
        view_size: int = 16,
        exchange_size: int | None = None,
        seed: RngOrSeed = 0,
    ) -> None:
        self.view_size = view_size
        self.exchange_size = (
            exchange_size if exchange_size is not None else max(1, view_size // 2)
        )
        self.rng = make_rng(seed)
        self.nodes: dict[int, PeerSamplingNode] = {}
        self.cycles_run = 0
        self.exchanges = 0

    # --- membership ---------------------------------------------------------

    def add_node(self, node_id: int) -> PeerSamplingNode:
        """Join a node, bootstrapping its view from random members."""
        if node_id in self.nodes:
            return self.nodes[node_id]
        node = PeerSamplingNode(node_id, self.view_size)
        existing = list(self.nodes)
        if existing:
            bootstrap = self.rng.sample(
                existing, min(self.view_size, len(existing))
            )
            node.view.merge(
                (NodeDescriptor(nid) for nid in bootstrap), exclude=node_id
            )
            # Seed the contacted nodes with the newcomer too, so joins
            # propagate even before the next cycle.
            for nid in bootstrap[:2]:
                self.nodes[nid].view.merge(
                    [NodeDescriptor(node_id)], exclude=nid
                )
        self.nodes[node_id] = node
        return node

    def remove_node(self, node_id: int) -> None:
        """Leave/crash: the node simply disappears (views age it out)."""
        self.nodes.pop(node_id, None)

    # --- gossip -------------------------------------------------------------------

    def cycle(self) -> int:
        """Run one gossip cycle over all nodes; return exchanges done."""
        exchanges = 0
        order = list(self.nodes)
        self.rng.shuffle(order)
        for node_id in order:
            node = self.nodes.get(node_id)
            if node is None:
                continue
            node.view.increase_age()
            partner_descriptor = node.view.oldest()
            if partner_descriptor is None:
                continue
            partner = self.nodes.get(partner_descriptor.node_id)
            if partner is None:
                node.view.remove(partner_descriptor.node_id)
                continue
            self._exchange(node, partner)
            exchanges += 1
        self.cycles_run += 1
        self.exchanges += exchanges
        return exchanges

    def _exchange(self, node: PeerSamplingNode, partner: PeerSamplingNode) -> None:
        outgoing = node.view.random_subset(self.exchange_size - 1, self.rng)
        outgoing = outgoing + [NodeDescriptor(node.node_id, age=0)]
        incoming = partner.view.random_subset(self.exchange_size - 1, self.rng)
        incoming = incoming + [NodeDescriptor(partner.node_id, age=0)]
        partner.view.merge(
            outgoing,
            exclude=partner.node_id,
            swap_out={d.node_id for d in incoming},
        )
        node.view.merge(
            incoming,
            exclude=node.node_id,
            swap_out={d.node_id for d in outgoing},
        )

    # --- introspection -----------------------------------------------------------------

    def view_of(self, node_id: int) -> list[int]:
        """Peer ids currently in ``node_id``'s view."""
        return self.nodes[node_id].view.node_ids()

    def in_degree_distribution(self) -> dict[int, int]:
        """node id -> number of views containing it (uniformity check)."""
        degrees = {nid: 0 for nid in self.nodes}
        for node in self.nodes.values():
            for peer in node.view.node_ids():
                if peer in degrees:
                    degrees[peer] += 1
        return degrees
