"""Churn: the failure mode the hybrid architecture sidesteps.

Section 2.3 motivates HyRec with the deployment pains of P2P systems:
"Users can join and leave the system at any time, e.g. due to machine
failures or voluntary disconnections" and clients "may encounter
limitations related to churn and NAT traversal."  Section 2.4 adds
that HyRec, unlike the decentralized systems, "allows clients to have
offline users within their KNN, thus leveraging clients that are not
concurrently online."

This module provides a churn process for overlay simulations: each
cycle, a fraction of nodes goes offline and a fraction of the offline
population comes back.  The P2P churn ablation
(``benchmarks/bench_ablation_churn.py``) uses it to show the gossip
baseline's KNN quality degrading with churn while HyRec -- whose KNN
table lives on the server and may freely reference offline users --
is unaffected by the same on/off pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.randomness import make_rng, RngOrSeed


@dataclass
class ChurnStats:
    """Counters describing a churn process so far."""

    departures: int = 0
    returns: int = 0
    cycles: int = 0
    online_history: list[int] = field(default_factory=list)


class ChurnProcess:
    """Per-cycle stochastic on/off switching over a fixed population.

    Args:
        population: All node ids that exist (online or offline).
        leave_probability: Chance an online node goes offline each
            cycle (session end, crash, laptop lid).
        return_probability: Chance an offline node comes back each
            cycle.
        seed: Randomness for the switching decisions.

    The stationary online fraction is
    ``return_p / (return_p + leave_p)``; tests pin this identity.
    """

    def __init__(
        self,
        population: list[int],
        leave_probability: float,
        return_probability: float,
        seed: RngOrSeed = 0,
    ) -> None:
        if not 0.0 <= leave_probability <= 1.0:
            raise ValueError("leave_probability must be within [0, 1]")
        if not 0.0 <= return_probability <= 1.0:
            raise ValueError("return_probability must be within [0, 1]")
        self.leave_probability = leave_probability
        self.return_probability = return_probability
        self.rng = make_rng(seed)
        self.online: set[int] = set(population)
        self.offline: set[int] = set()
        self.stats = ChurnStats()

    @property
    def online_fraction(self) -> float:
        """Share of the population currently online."""
        total = len(self.online) + len(self.offline)
        return len(self.online) / total if total else 0.0

    def expected_online_fraction(self) -> float:
        """Stationary online share of the two-state Markov process."""
        denominator = self.leave_probability + self.return_probability
        if denominator == 0:
            return 1.0
        return self.return_probability / denominator

    def step(self) -> tuple[set[int], set[int]]:
        """Advance one cycle; returns ``(departed, returned)`` ids."""
        departed = {
            node for node in self.online if self.rng.random() < self.leave_probability
        }
        returned = {
            node
            for node in self.offline
            if self.rng.random() < self.return_probability
        }
        self.online -= departed
        self.offline |= departed
        self.online |= returned
        self.offline -= returned
        self.stats.departures += len(departed)
        self.stats.returns += len(returned)
        self.stats.cycles += 1
        self.stats.online_history.append(len(self.online))
        return departed, returned
