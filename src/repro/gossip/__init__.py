"""Gossip substrate for the fully decentralized baseline.

Section 2.3 describes the P2P recommenders HyRec competes with
([19, 21, 18]): every user machine maintains a random peer-sampling
view [35] plus a KNN ("cluster") view refined by epidemic exchanges
[50].  This package implements both layers from scratch:

* :mod:`repro.gossip.peer_sampling` -- Jelasity et al.'s gossip-based
  peer sampling (view exchange with healer/swapper parameters);
* :mod:`repro.gossip.clustering` -- a Vicinity/Gossple-style epidemic
  clustering layer that converges each node's view to its k nearest
  neighbors using only local exchanges.

:mod:`repro.baselines.p2p` composes them into the full decentralized
recommender whose bandwidth Figure 11 and Section 5.6 compare against
HyRec.
"""

from repro.gossip.peer_sampling import (
    NodeDescriptor,
    PartialView,
    PeerSamplingNode,
    PeerSamplingService,
)
from repro.gossip.clustering import ClusteringNode, ClusteringOverlay

__all__ = [
    "NodeDescriptor",
    "PartialView",
    "PeerSamplingNode",
    "PeerSamplingService",
    "ClusteringNode",
    "ClusteringOverlay",
]
