"""Measured-task map-reduce engine with a cluster wall-clock model.

Tasks run for real (sequentially, in-process) and their CPU time is
measured with ``time.perf_counter``.  The *cluster* wall-clock is then
the makespan of scheduling those measured durations onto ``workers``
parallel slots, plus:

* a fixed scheduling overhead per task (Hadoop task launch is
  famously expensive; Phoenix's is tiny -- both are parameters);
* a shuffle phase whose duration scales with the number of key-value
  pairs moved, multiplied by a ``shuffle_penalty`` when the shuffle
  crosses node boundaries (the ClusMahout configuration).

This keeps every *result* exact while making the *time* axis behave
like the paper's Figure 7 clusters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Sequence

Mapper = Callable[[Any], Iterable[tuple[Hashable, Any]]]
Reducer = Callable[[Hashable, list[Any]], Any]


def makespan(durations: Sequence[float], workers: int) -> float:
    """Longest-processing-time-first schedule length on ``workers`` slots.

    LPT is the classic 4/3-approximation; it mirrors how a real
    scheduler balances long tasks across a small cluster.
    """
    if workers < 1:
        raise ValueError("need at least one worker")
    if not durations:
        return 0.0
    loads = [0.0] * workers
    for duration in sorted(durations, reverse=True):
        slot = min(range(workers), key=loads.__getitem__)
        loads[slot] += duration
    return max(loads)


@dataclass
class PhaseStats:
    """Measured execution of one phase (map or reduce)."""

    tasks: int = 0
    cpu_seconds: float = 0.0
    task_durations: list[float] = field(default_factory=list)

    def record(self, duration: float) -> None:
        self.tasks += 1
        self.cpu_seconds += duration
        self.task_durations.append(duration)


@dataclass
class MapReduceResult:
    """Output records plus the measured/modeled execution profile."""

    results: list[Any]
    map_stats: PhaseStats
    reduce_stats: PhaseStats
    shuffled_pairs: int
    wall_clock_s: float
    cpu_seconds: float

    @property
    def speedup(self) -> float:
        """CPU-seconds over modeled wall-clock (parallel efficiency)."""
        if self.wall_clock_s <= 0:
            return 1.0
        return self.cpu_seconds / self.wall_clock_s


class MapReduceEngine:
    """A miniature Phoenix/Hadoop: real work, modeled parallelism."""

    def __init__(
        self,
        workers: int = 4,
        tasks_per_worker: int = 4,
        task_overhead_s: float = 0.05,
        shuffle_cost_per_pair_s: float = 2e-7,
        shuffle_penalty: float = 1.0,
        name: str = "mapreduce",
    ) -> None:
        """
        Args:
            workers: Parallel execution slots (cores across the
                cluster: 4 for the single-node setups, 8 for
                ClusMahout).
            tasks_per_worker: Map-task granularity; more tasks -> finer
                load balancing but more scheduling overhead.
            task_overhead_s: Fixed cost to launch one task (modeled;
                ~50ms for Hadoop-style, ~1ms for Phoenix-style).
            shuffle_cost_per_pair_s: Seconds to move one key-value pair
                through the shuffle.
            shuffle_penalty: Multiplier on shuffle time when data
                crosses node boundaries (>1 for multi-node clusters).
            name: Label used in experiment reports.
        """
        if workers < 1:
            raise ValueError("need at least one worker")
        if tasks_per_worker < 1:
            raise ValueError("need at least one task per worker")
        if shuffle_penalty < 1.0:
            raise ValueError("shuffle_penalty cannot be below 1.0")
        self.workers = workers
        self.tasks_per_worker = tasks_per_worker
        self.task_overhead_s = task_overhead_s
        self.shuffle_cost_per_pair_s = shuffle_cost_per_pair_s
        self.shuffle_penalty = shuffle_penalty
        self.name = name

    # --- execution ---------------------------------------------------------

    def run(
        self,
        inputs: Sequence[Any],
        mapper: Mapper,
        reducer: Reducer,
    ) -> MapReduceResult:
        """Execute one job over ``inputs``; see class docstring."""
        map_stats = PhaseStats()
        intermediate: dict[Hashable, list[Any]] = {}
        shuffled_pairs = 0

        for chunk in self._split(inputs, self.workers * self.tasks_per_worker):
            start = time.perf_counter()
            emitted: list[tuple[Hashable, Any]] = []
            for record in chunk:
                emitted.extend(mapper(record))
            map_stats.record(time.perf_counter() - start)
            for key, value in emitted:
                intermediate.setdefault(key, []).append(value)
                shuffled_pairs += 1

        reduce_stats = PhaseStats()
        results: list[Any] = []
        keys = list(intermediate)
        for key_chunk in self._split(keys, self.workers * self.tasks_per_worker):
            start = time.perf_counter()
            for key in key_chunk:
                results.append(reducer(key, intermediate[key]))
            reduce_stats.record(time.perf_counter() - start)

        wall_clock = self._wall_clock(map_stats, reduce_stats, shuffled_pairs)
        cpu = map_stats.cpu_seconds + reduce_stats.cpu_seconds
        return MapReduceResult(
            results=results,
            map_stats=map_stats,
            reduce_stats=reduce_stats,
            shuffled_pairs=shuffled_pairs,
            wall_clock_s=wall_clock,
            cpu_seconds=cpu,
        )

    # --- model -------------------------------------------------------------------

    def _wall_clock(
        self, map_stats: PhaseStats, reduce_stats: PhaseStats, shuffled_pairs: int
    ) -> float:
        map_span = makespan(
            [d + self.task_overhead_s for d in map_stats.task_durations],
            self.workers,
        )
        reduce_span = makespan(
            [d + self.task_overhead_s for d in reduce_stats.task_durations],
            self.workers,
        )
        shuffle_span = (
            shuffled_pairs * self.shuffle_cost_per_pair_s * self.shuffle_penalty
        )
        return map_span + shuffle_span + reduce_span

    @staticmethod
    def _split(items: Sequence[Any], parts: int) -> Iterable[Sequence[Any]]:
        """Split ``items`` into up to ``parts`` contiguous chunks."""
        total = len(items)
        if total == 0:
            return
        parts = min(parts, total)
        base, extra = divmod(total, parts)
        start = 0
        for index in range(parts):
            size = base + (1 if index < extra else 0)
            yield items[start : start + size]
            start += size
