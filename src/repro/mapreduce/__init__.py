"""In-process map-reduce engine (the paper's back-end substrate).

The centralized baselines of Section 5.4 run their offline KNN
selection on map-reduce platforms: Offline-CRec "exploit[s] an
implementation of the mapreduce paradigm on a single 4-core node
[Phoenix, HPCA 2007]" while MahoutSingle and ClusMahout run Mahout's
user-based CF on Hadoop over one and two 4-core nodes respectively.

This package is a faithful miniature of that stack:

* :mod:`repro.mapreduce.engine` executes real map / shuffle / reduce
  phases in-process, *measures* the CPU time of every task, and models
  the cluster wall-clock as the makespan of assigning those measured
  tasks to W workers (plus per-task scheduling overhead and an
  optional cross-node shuffle penalty).
* :mod:`repro.mapreduce.jobs` expresses the three KNN back-ends of
  Figure 7 -- exhaustive, Mahout-style inverted-index, and CRec's
  sampling iterations -- as jobs on that engine.

Results are therefore bit-for-bit real; only the parallel speedup is
modeled, which is exactly the substitution DESIGN.md documents.
"""

from repro.mapreduce.engine import (
    MapReduceEngine,
    MapReduceResult,
    PhaseStats,
    makespan,
)
from repro.mapreduce.jobs import (
    crec_knn_job,
    exhaustive_knn_job,
    mahout_knn_job,
)

__all__ = [
    "MapReduceEngine",
    "MapReduceResult",
    "PhaseStats",
    "makespan",
    "crec_knn_job",
    "exhaustive_knn_job",
    "mahout_knn_job",
]
