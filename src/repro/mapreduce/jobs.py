"""The three offline KNN back-ends of Figure 7 as map-reduce jobs.

* :func:`exhaustive_knn_job` -- Offline-Ideal: all-pairs cosine, the
  O(N^2) brute force the paper uses as the quality upper bound.
* :func:`mahout_knn_job` -- Mahout-style user-based CF: an inverted
  item->users index prunes the candidate pairs, then each user scores
  only co-rating users.  Run with ``workers=4`` for MahoutSingle and
  ``workers=8, shuffle_penalty>1`` for ClusMahout.
* :func:`crec_knn_job` -- Offline-CRec: HyRec's own sampling-based
  iteration (Algorithm 1 with Nu + KNN(Nu) + random candidates), run
  for all users for a few cycles on the back-end.  Same code path as
  the online system, just batched.

Every job returns ``(knn_table, MapReduceResult)`` where the table
maps user id -> ordered neighbor list.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.knn import knn_select
from repro.core.similarity import SetMetric, cosine
from repro.mapreduce.engine import MapReduceEngine, MapReduceResult
from repro.sim.randomness import derive_rng

LikedSets = Mapping[int, frozenset[int]]


def exhaustive_knn_job(
    engine: MapReduceEngine,
    liked_sets: LikedSets,
    k: int,
    metric: SetMetric = cosine,
) -> tuple[dict[int, list[int]], MapReduceResult]:
    """All-pairs KNN: every mapper scores its user against everyone."""
    users = list(liked_sets)

    def mapper(user: int):
        neighbors = knn_select(
            liked_sets[user], liked_sets, k=k, metric=metric, exclude=user
        )
        yield user, [n.user_id for n in neighbors]

    def reducer(user: int, values: list[list[int]]):
        return user, values[0]

    result = engine.run(users, mapper, reducer)
    return dict(result.results), result


def mahout_knn_job(
    engine: MapReduceEngine,
    liked_sets: LikedSets,
    k: int,
) -> tuple[dict[int, list[int]], MapReduceResult]:
    """Inverted-index user-based CF (Mahout's actual pipeline shape).

    Two chained map-reduce passes, like Mahout's ``UserSimilarity``
    jobs on Hadoop:

    1. *Index build*: map each user's ratings to ``(item, user)``
       pairs; reduce to the item -> raters inverted index.
    2. *Co-occurrence scoring*: map over users; for each liked item,
       walk the item's rater list accumulating intersection counts,
       then convert counts to cosine and keep the top-k.

    The pruning is real: only user pairs that co-rate at least one
    item are ever scored, which is why Mahout beats the exhaustive
    all-pairs pass on every workload while still doing asymptotically
    more work than CRec's sampling.

    Only cosine is supported -- the count/size identity
    ``cos = |A n B| / sqrt(|A| |B|)`` is what makes co-occurrence
    counting equivalent to pairwise scoring.
    """
    users = list(liked_sets)

    # Phase 1: build the inverted index as a real MR pass.
    def index_mapper(user: int):
        for item in liked_sets[user]:
            yield item, user

    def index_reducer(item: int, raters: list[int]):
        return item, raters

    phase1 = engine.run(users, index_mapper, index_reducer)
    index: dict[int, list[int]] = dict(phase1.results)

    # Phase 2: score co-raters only.
    sizes = {user: len(liked) for user, liked in liked_sets.items()}

    def score_mapper(user: int):
        counts: dict[int, int] = {}
        for item in liked_sets[user]:
            for other in index[item]:
                if other != user:
                    counts[other] = counts.get(other, 0) + 1
        own_size = sizes[user]
        scored = [
            (count / ((own_size * sizes[other]) ** 0.5), other)
            for other, count in counts.items()
        ]
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        yield user, [other for _, other in scored[:k]]

    def score_reducer(user: int, values: list[list[int]]):
        return user, values[0]

    phase2 = engine.run(users, score_mapper, score_reducer)
    table = dict(phase2.results)
    # Users with no liked items emit nothing in phase 2's counts but
    # still appear (empty neighbor list) for table completeness.
    for user in users:
        table.setdefault(user, [])
    combined = _accumulate(phase1, phase2)
    combined.results = list(table.items())
    return table, combined


def crec_knn_job(
    engine: MapReduceEngine,
    liked_sets: LikedSets,
    k: int,
    iterations: int = 5,
    metric: SetMetric = cosine,
    seed: int = 0,
) -> tuple[dict[int, list[int]], MapReduceResult]:
    """Sampling-based KNN (HyRec's algorithm run offline, batched).

    Each iteration maps over all users; a user's candidate set is her
    current KNN, her neighbors' KNN, and ``k`` random users -- the
    exact Sampler recipe of Section 3.1.  A handful of iterations
    suffices (epidemic convergence, [50, 28]).

    The returned :class:`MapReduceResult` aggregates all iterations:
    its ``wall_clock_s`` is the sum over iterations (they are strictly
    sequential), and its ``results`` hold the final table.
    """
    if iterations < 1:
        raise ValueError("need at least one iteration")
    users = list(liked_sets)
    rng = derive_rng(seed, "crec:init")
    # Random bootstrap, as for fresh users in the online system.
    knn_table: dict[int, list[int]] = {}
    for user in users:
        others = [u for u in _sample_bootstrap(users, rng, k + 1) if u != user]
        knn_table[user] = others[:k]

    total: MapReduceResult | None = None
    for iteration in range(iterations):
        iter_rng = derive_rng(seed, f"crec:iter:{iteration}")

        def mapper(user: int):
            candidates: set[int] = set(knn_table[user])
            for neighbor in knn_table[user]:
                candidates.update(knn_table.get(neighbor, ()))
            for _ in range(k):
                candidates.add(users[iter_rng.randrange(len(users))])
            candidates.discard(user)
            neighbors = knn_select(
                liked_sets[user],
                {c: liked_sets[c] for c in candidates},
                k=k,
                metric=metric,
                exclude=user,
            )
            yield user, [n.user_id for n in neighbors]

        def reducer(user: int, values: list[list[int]]):
            return user, values[0]

        result = engine.run(users, mapper, reducer)
        knn_table = dict(result.results)
        total = _accumulate(total, result)

    assert total is not None
    total.results = list(knn_table.items())
    return knn_table, total


def _sample_bootstrap(users: list[int], rng, count: int) -> list[int]:
    if count >= len(users):
        return list(users)
    return rng.sample(users, count)


def _accumulate(
    total: MapReduceResult | None, new: MapReduceResult
) -> MapReduceResult:
    if total is None:
        return new
    total.map_stats.tasks += new.map_stats.tasks
    total.map_stats.cpu_seconds += new.map_stats.cpu_seconds
    total.map_stats.task_durations.extend(new.map_stats.task_durations)
    total.reduce_stats.tasks += new.reduce_stats.tasks
    total.reduce_stats.cpu_seconds += new.reduce_stats.cpu_seconds
    total.reduce_stats.task_durations.extend(new.reduce_stats.task_durations)
    total.shuffled_pairs += new.shuffled_pairs
    total.wall_clock_s += new.wall_clock_s
    total.cpu_seconds += new.cpu_seconds
    return total
