"""Time-series bucketing for convergence curves (Figure 5)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class SeriesPoint:
    """One aggregated point of a time series."""

    time: float
    mean: float
    count: int


def bucket_series(
    samples: Sequence[tuple[float, float]],
    bucket_width: float,
) -> list[SeriesPoint]:
    """Average raw ``(time, value)`` samples into fixed-width buckets.

    The candidate-set sampler records one size sample per request;
    Figure 5 plots their running mean per time window.  Empty buckets
    are skipped (no requests -> no point), matching how the paper's
    plots thin out in quiet periods.
    """
    if bucket_width <= 0:
        raise ValueError("bucket_width must be positive")
    if not samples:
        return []
    buckets: dict[int, tuple[float, int]] = {}
    for timestamp, value in samples:
        slot = int(timestamp // bucket_width)
        total, count = buckets.get(slot, (0.0, 0))
        buckets[slot] = (total + value, count + 1)
    return [
        SeriesPoint(
            time=slot * bucket_width,
            mean=total / count,
            count=count,
        )
        for slot, (total, count) in sorted(buckets.items())
    ]
