"""Evaluation metrics (Section 5.1, "Metrics").

* :mod:`repro.metrics.view_similarity` -- average profile similarity
  between each user and her neighbors, and the global-knowledge upper
  bound ("ideal KNN") it is normalized against (Figures 3-4).
* :mod:`repro.metrics.recommendation_quality` -- the hit-counting
  protocol of [37]: replay the 20% test tail, count recommendations
  that contain the item the user is about to like (Figure 6).
* :mod:`repro.metrics.convergence` -- time-series bucketing for the
  candidate-set size curves (Figure 5).
* latency summaries for the systems experiments (Figures 7-9, 12-13)
  live in :mod:`repro.obs.timing` (the observability layer) and are
  re-exported here; :mod:`repro.metrics.timing` is a deprecated shim.
* :mod:`repro.metrics.bandwidth` -- byte formatting and per-widget
  traffic summaries (Figure 10, Section 5.6).
"""

from repro.metrics.view_similarity import (
    ideal_view_similarity,
    ideal_view_similarity_per_user,
    view_similarity_of_table,
    view_similarity_per_user,
)
from repro.metrics.recommendation_quality import (
    QualityProtocol,
    QualityResult,
    RecommenderAdapter,
)
from repro.metrics.convergence import bucket_series, SeriesPoint
from repro.obs.timing import LatencySummary, summarize_latencies
from repro.metrics.bandwidth import format_bytes

__all__ = [
    "ideal_view_similarity",
    "ideal_view_similarity_per_user",
    "view_similarity_of_table",
    "view_similarity_per_user",
    "QualityProtocol",
    "QualityResult",
    "RecommenderAdapter",
    "bucket_series",
    "SeriesPoint",
    "LatencySummary",
    "summarize_latencies",
    "format_bytes",
]
