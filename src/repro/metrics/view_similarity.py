"""View similarity: how good a KNN approximation is (Figures 3-4).

    "We compute the average profile similarity between a user and her
    neighbors, referred to as view similarity ...  We obtain an upper
    bound on this view similarity by considering neighbors computed
    with global knowledge.  We refer to this upper bound as the ideal
    KNN."
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.baselines.exact import ExactKnnIndex
from repro.core.similarity import SetMetric, cosine

LikedSets = Mapping[int, frozenset[int]]
KnnTableDict = Mapping[int, Sequence[int]]


def view_similarity_per_user(
    liked_sets: LikedSets,
    knn_table: KnnTableDict,
    metric: SetMetric = cosine,
) -> dict[int, float]:
    """Mean user-to-neighbor similarity, per user.

    Users with an empty neighborhood score 0 -- they genuinely receive
    no personalization, which is exactly the penalty the paper's
    offline-staleness argument rests on.
    """
    result: dict[int, float] = {}
    for user, liked in liked_sets.items():
        neighbors = knn_table.get(user, ())
        sims = [
            metric(liked, liked_sets[n]) for n in neighbors if n in liked_sets
        ]
        result[user] = sum(sims) / len(sims) if sims else 0.0
    return result


def view_similarity_of_table(
    liked_sets: LikedSets,
    knn_table: KnnTableDict,
    metric: SetMetric = cosine,
) -> float:
    """Average view similarity over all users (a Figure 3 y-value)."""
    per_user = view_similarity_per_user(liked_sets, knn_table, metric)
    if not per_user:
        return 0.0
    return sum(per_user.values()) / len(per_user)


def ideal_view_similarity_per_user(
    liked_sets: LikedSets, k: int, metric: str = "cosine"
) -> dict[int, float]:
    """Per-user upper bound: mean similarity to the true top-k."""
    if not liked_sets:
        return {}
    index = ExactKnnIndex(liked_sets, metric=metric)
    result: dict[int, float] = {}
    for user in liked_sets:
        neighbors = index.topk(user, k)
        if neighbors:
            result[user] = sum(n.score for n in neighbors) / len(neighbors)
        else:
            result[user] = 0.0
    return result


def ideal_view_similarity(
    liked_sets: LikedSets, k: int, metric: str = "cosine"
) -> float:
    """Average ideal view similarity (the Figure 3 upper bound)."""
    per_user = ideal_view_similarity_per_user(liked_sets, k, metric)
    if not per_user:
        return 0.0
    return sum(per_user.values()) / len(per_user)
