"""Byte formatting for bandwidth reports (Figure 10, Section 5.6)."""

from __future__ import annotations


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count (kB/MB as in the paper's prose)."""
    if num_bytes < 0:
        raise ValueError("byte counts cannot be negative")
    if num_bytes < 1_000:
        return f"{num_bytes:.0f}B"
    if num_bytes < 1_000_000:
        return f"{num_bytes / 1_000:.1f}kB"
    if num_bytes < 1_000_000_000:
        return f"{num_bytes / 1_000_000:.1f}MB"
    return f"{num_bytes / 1_000_000_000:.2f}GB"
