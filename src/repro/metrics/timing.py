"""Latency summaries for the systems experiments."""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class LatencySummary:
    """Aggregate statistics of a latency sample, in seconds."""

    count: int
    mean: float
    median: float
    p95: float
    maximum: float

    @property
    def mean_ms(self) -> float:
        return self.mean * 1e3

    @property
    def p95_ms(self) -> float:
        return self.p95 * 1e3


def summarize_latencies(samples: Sequence[float]) -> LatencySummary:
    """Summarize a non-empty sequence of latencies."""
    if not samples:
        raise ValueError("cannot summarize an empty latency sample")
    ordered = sorted(samples)
    p95_index = min(len(ordered) - 1, int(0.95 * len(ordered)))
    return LatencySummary(
        count=len(ordered),
        mean=statistics.fmean(ordered),
        median=ordered[len(ordered) // 2],
        p95=ordered[p95_index],
        maximum=ordered[-1],
    )
