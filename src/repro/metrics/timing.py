"""Deprecated shim: latency summaries moved to :mod:`repro.obs.timing`.

The observability layer (PR 7) re-homed the repo's one timing
facility; import :class:`LatencySummary` / :func:`summarize_latencies`
from :mod:`repro.obs.timing` (or :mod:`repro.metrics`, which
re-exports them).  This module stays importable so existing call sites
keep working.
"""

from __future__ import annotations

from repro.obs.timing import LatencySummary, summarize_latencies

__all__ = ["LatencySummary", "summarize_latencies"]
