"""Recommendation quality: the hit-counting protocol of Figure 6.

Section 5.1: "We split each dataset into a training and a test set
according to time ... For each positive rating (liked item), r, in
the 20%, the associated user requests a set of n recommendations.
The recommendation-quality metric counts the number of positive
ratings for which the set contains the corresponding item: the higher
the better."

The protocol below replays the training set through a system, then
walks the test set in time order; before each test rating is applied,
the user requests recommendations and we record the *rank* at which
the about-to-be-liked item appears (if at all).  ``hits_at[n]`` then
counts test positives recommended within the top n -- one call yields
the whole Figure 6 curve.  The test rating is applied afterwards, so
profiles keep evolving during the test phase exactly as they would in
production (and as the online systems in the paper require).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.datasets.schema import Rating, Trace


class RecommenderAdapter(Protocol):
    """The minimal surface a system must expose to be evaluated."""

    def record_rating(
        self, user_id: int, item: int, value: float, timestamp: float
    ) -> None:
        """Apply one rating to the system's state."""
        ...

    def recommend_for(self, user_id: int, now: float, n: int) -> list[int]:
        """Ranked recommendations for ``user_id`` at time ``now``.

        For online systems (HyRec, Online-Ideal) this call is also the
        activity that drives their KNN refinement, matching the paper's
        coupling of requests and iterations.
        """
        ...


@dataclass
class QualityResult:
    """Hit counts for every recommendation-list size up to ``n_max``."""

    n_max: int
    positives: int = 0
    requests: int = 0
    hits_at: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for n in range(1, self.n_max + 1):
            self.hits_at.setdefault(n, 0)

    def record_rank(self, rank: int | None) -> None:
        """Record one test positive; ``rank`` is 1-based or ``None``."""
        self.positives += 1
        if rank is None:
            return
        for n in range(rank, self.n_max + 1):
            self.hits_at[n] += 1

    def curve(self) -> list[tuple[int, int]]:
        """The Figure 6 series: (#recommendations, quality)."""
        return [(n, self.hits_at[n]) for n in range(1, self.n_max + 1)]

    def precision_at(self, n: int) -> float:
        """hits@n / positives (the normalized form of the metric)."""
        if self.positives == 0:
            return 0.0
        return self.hits_at[n] / self.positives


class QualityProtocol:
    """Train/test replay driver around a :class:`RecommenderAdapter`."""

    def __init__(self, n_max: int = 10) -> None:
        if n_max < 1:
            raise ValueError("n_max must be at least 1")
        self.n_max = n_max

    def run(
        self,
        system: RecommenderAdapter,
        train: Trace,
        test: Trace,
        on_test_rating: Callable[[Rating], None] | None = None,
    ) -> QualityResult:
        """Replay ``train``, then evaluate along ``test``."""
        for rating in train:
            system.record_rating(
                rating.user, rating.item, rating.value, rating.timestamp
            )
        result = QualityResult(n_max=self.n_max)
        for rating in test:
            if rating.value == 1.0:
                recommendations = system.recommend_for(
                    rating.user, rating.timestamp, self.n_max
                )
                result.requests += 1
                rank = _rank_of(rating.item, recommendations, self.n_max)
                result.record_rank(rank)
            system.record_rating(
                rating.user, rating.item, rating.value, rating.timestamp
            )
            if on_test_rating is not None:
                on_test_rating(rating)
        return result


def _rank_of(item: int, recommendations: list[int], n_max: int) -> int | None:
    """1-based rank of ``item`` within the first ``n_max`` entries."""
    for index, recommended in enumerate(recommendations[:n_max]):
        if recommended == item:
            return index + 1
    return None
