"""Exact (global-knowledge) KNN -- the paper's "ideal" reference.

The ideal KNN of user ``u`` is the true top-k over *all* users by
cosine similarity.  The evaluation uses it three ways:

* as the periodic table of the Offline-Ideal baseline;
* as the per-request table of the Online-Ideal baseline;
* as the upper bound in the view-similarity metric (Figures 3-4).

All-pairs cosine over binary profiles is a matrix product: with
``A`` the users-by-items 0/1 matrix, ``A @ A.T`` counts intersections
and the norms are row sums.  We block over rows so that the largest
intermediate is ``block x N`` (ML3-scale tables fit comfortably).
The intersection-counts-to-scores step is the shared batch kernel of
:mod:`repro.engine.kernels` -- the same code that scores the online
request hot path.

Tie-breaking matches :func:`repro.core.knn.knn_select` exactly
(descending score, then ascending user id), so the exact and sampled
paths are comparable neighbor-for-neighbor.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.knn import Neighbor
from repro.engine.kernels import similarity_scores

LikedSets = Mapping[int, frozenset[int]]


class ExactKnnIndex:
    """Dense binary profile matrix with exact top-k queries."""

    def __init__(self, liked_sets: LikedSets, metric: str = "cosine") -> None:
        if metric not in ("cosine", "jaccard", "overlap"):
            raise ValueError(f"unsupported exact metric {metric!r}")
        self.metric = metric
        self.user_ids: list[int] = sorted(liked_sets)
        self._row_of = {uid: row for row, uid in enumerate(self.user_ids)}
        items = sorted({item for liked in liked_sets.values() for item in liked})
        self._col_of = {item: col for col, item in enumerate(items)}
        self.num_items = len(items)

        n = len(self.user_ids)
        self.matrix = np.zeros((n, max(1, self.num_items)), dtype=np.float32)
        for uid, liked in liked_sets.items():
            row = self._row_of[uid]
            for item in liked:
                self.matrix[row, self._col_of[item]] = 1.0
        self.sizes = self.matrix.sum(axis=1)  # |L_u| per row

    def __len__(self) -> int:
        return len(self.user_ids)

    # --- similarity -----------------------------------------------------------

    def _similarity_block(self, rows: np.ndarray) -> np.ndarray:
        """Similarity of ``rows`` (indices) against every user.

        The float32 matrix product yields exact integer intersection
        counts (they are far below 2^24); the division happens in
        float64 so that scores -- and therefore tie-breaks -- agree
        bitwise with the pure-Python :func:`repro.core.knn.knn_select`.
        """
        inter = (self.matrix[rows] @ self.matrix.T).astype(np.float64)
        sizes = self.sizes.astype(np.float64)
        return similarity_scores(
            self.metric, inter, sizes[rows][:, None], sizes[None, :]
        )

    # --- queries --------------------------------------------------------------------

    def topk(self, user_id: int, k: int) -> list[Neighbor]:
        """Exact k nearest neighbors of one user."""
        if k < 1:
            raise ValueError("k must be at least 1")
        row = self._row_of[user_id]
        sims = self._similarity_block(np.array([row]))[0]
        sims[row] = -np.inf  # never self
        return self._rank_row(sims, k)

    def table(self, k: int, block: int = 256) -> dict[int, list[int]]:
        """Exact KNN table for every user (the Offline-Ideal output)."""
        if k < 1:
            raise ValueError("k must be at least 1")
        result: dict[int, list[int]] = {}
        n = len(self.user_ids)
        for start in range(0, n, block):
            rows = np.arange(start, min(start + block, n))
            sims = self._similarity_block(rows)
            for local, row in enumerate(rows):
                row_sims = sims[local]
                row_sims[row] = -np.inf
                neighbors = self._rank_row(row_sims, k)
                result[self.user_ids[row]] = [nb.user_id for nb in neighbors]
        return result

    def pair_similarity(self, user_a: int, user_b: int) -> float:
        """Similarity of one specific pair (used by view-similarity)."""
        row_a = self._row_of[user_a]
        row_b = self._row_of[user_b]
        inter = float(self.matrix[row_a] @ self.matrix[row_b])
        size_a = float(self.sizes[row_a])
        size_b = float(self.sizes[row_b])
        if self.metric == "cosine":
            denom = (size_a * size_b) ** 0.5
        elif self.metric == "jaccard":
            denom = size_a + size_b - inter
        else:
            denom = min(size_a, size_b)
        return inter / denom if denom > 0 else 0.0

    def _rank_row(self, sims: np.ndarray, k: int) -> list[Neighbor]:
        """Top-k of one similarity row with knn_select's tie-breaks."""
        n = sims.shape[0]
        k_eff = min(k, n - 1) if n > 1 else 0
        if k_eff <= 0:
            return []
        # Partial selection, then exact ordering of the selected slice.
        candidate_count = min(n, k_eff + 16)
        part = np.argpartition(-sims, candidate_count - 1)[:candidate_count]
        order = sorted(part.tolist(), key=lambda r: (-float(sims[r]), self.user_ids[r]))
        return [
            Neighbor(user_id=self.user_ids[r], score=max(0.0, float(sims[r])))
            for r in order[:k_eff]
        ]


def exact_knn_table(
    liked_sets: LikedSets, k: int, metric: str = "cosine"
) -> dict[int, list[int]]:
    """One-shot exact KNN table (builds a throwaway index)."""
    if not liked_sets:
        return {}
    return ExactKnnIndex(liked_sets, metric=metric).table(k)


def average_pair_similarity(
    index: ExactKnnIndex, pairs: Sequence[tuple[int, int]]
) -> float:
    """Mean similarity over explicit user pairs (view-similarity core)."""
    if not pairs:
        return 0.0
    return sum(index.pair_similarity(a, b) for a, b in pairs) / len(pairs)
