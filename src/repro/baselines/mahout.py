"""The four back-end configurations of Figure 7.

Engine factories encode the paper's hardware:

* :func:`phoenix_engine` -- the single 4-core node running the
  Phoenix-style in-memory map-reduce [46] used by both Offline-Ideal
  ("Exhaustive") and Offline-CRec.  Task launch is micro-seconds.
* :func:`mahout_single_engine` -- Mahout on Hadoop, one 4-core node.
  Hadoop task launch is JVM-fork expensive (order of a second in
  2014 deployments); shuffle stays on-node.
* :func:`clus_mahout_engine` -- Mahout on Hadoop, two 4-core nodes:
  eight slots, but the shuffle now crosses the network
  (``shuffle_penalty``), so the speedup over MahoutSingle is real but
  below 2x -- matching the paper's observation that ClusMahout only
  beats Offline-CRec on the smallest dataset.

The ``run_*`` helpers execute the real KNN jobs and return
``(knn_table, MapReduceResult)``; ``MapReduceResult.wall_clock_s`` is
the Figure 7 y-value.
"""

from __future__ import annotations

from typing import Mapping

from repro.mapreduce.engine import MapReduceEngine, MapReduceResult
from repro.mapreduce.jobs import crec_knn_job, exhaustive_knn_job, mahout_knn_job

LikedSets = Mapping[int, frozenset[int]]


def phoenix_engine(workers: int = 4) -> MapReduceEngine:
    """In-memory single-node map-reduce (Phoenix, HPCA 2007)."""
    return MapReduceEngine(
        workers=workers,
        task_overhead_s=1e-3,
        shuffle_cost_per_pair_s=5e-8,
        shuffle_penalty=1.0,
        name=f"phoenix-{workers}core",
    )


def mahout_single_engine() -> MapReduceEngine:
    """Mahout/Hadoop on one 4-core node.

    The task-launch overhead is scaled to this reproduction's compute
    speed: Hadoop's JVM-fork launch costs ~1s against Java-speed
    similarity kernels; our Python kernels run the same workloads in
    correspondingly less absolute time, so the overhead shrinks by the
    same factor to keep the overhead/compute ratio -- and therefore
    Figure 7's orderings -- faithful.
    """
    return MapReduceEngine(
        workers=4,
        task_overhead_s=0.05,
        shuffle_cost_per_pair_s=2e-7,
        shuffle_penalty=1.0,
        name="mahout-1node",
    )


def clus_mahout_engine() -> MapReduceEngine:
    """Mahout/Hadoop on two 4-core nodes (cross-node shuffle)."""
    return MapReduceEngine(
        workers=8,
        task_overhead_s=0.05,
        shuffle_cost_per_pair_s=2e-7,
        shuffle_penalty=3.0,
        name="mahout-2node",
    )


def run_exhaustive(
    liked_sets: LikedSets, k: int = 10
) -> tuple[dict[int, list[int]], MapReduceResult]:
    """Offline-Ideal's all-pairs KNN on the Phoenix node."""
    return exhaustive_knn_job(phoenix_engine(), liked_sets, k=k)


def run_crec_backend(
    liked_sets: LikedSets, k: int = 10, iterations: int = 4, seed: int = 0
) -> tuple[dict[int, list[int]], MapReduceResult]:
    """Offline-CRec's sampling KNN on the Phoenix node."""
    return crec_knn_job(
        phoenix_engine(), liked_sets, k=k, iterations=iterations, seed=seed
    )


def run_mahout_single(
    liked_sets: LikedSets, k: int = 10
) -> tuple[dict[int, list[int]], MapReduceResult]:
    """Mahout user-based CF on one Hadoop node."""
    return mahout_knn_job(mahout_single_engine(), liked_sets, k=k)


def run_clus_mahout(
    liked_sets: LikedSets, k: int = 10
) -> tuple[dict[int, list[int]], MapReduceResult]:
    """Mahout user-based CF on the two-node Hadoop cluster."""
    return mahout_knn_job(clus_mahout_engine(), liked_sets, k=k)
