"""Every competitor system the paper evaluates HyRec against.

Section 5.1 ("Competitors"):

* **Offline-Ideal** -- periodic brute-force exact KNN on a back-end;
  recommendations computed on demand on the front-end
  (:mod:`repro.baselines.offline_ideal`).
* **Online-Ideal** -- exact KNN recomputed before *every*
  recommendation; the quality upper bound, "inapplicable due to its
  huge response times" (:mod:`repro.baselines.online_ideal`).
* **Offline-CRec** -- HyRec's own sampling KNN run offline on a
  map-reduce back-end; its front-end (CRec) answers requests with
  server-side item recommendation (:mod:`repro.baselines.crec`).
* **MahoutSingle / ClusMahout** -- Mahout's user-based CF on Hadoop
  over one / two 4-core nodes (:mod:`repro.baselines.mahout`).
* **Decentralized (P2P)** -- gossip overlay + epidemic clustering on
  every user machine (:mod:`repro.baselines.p2p`).

:mod:`repro.baselines.exact` provides the shared exact-KNN engine
(numpy-blocked all-pairs similarity) that the ideal baselines and the
view-similarity metric build on.
"""

from repro.baselines.exact import ExactKnnIndex, exact_knn_table
from repro.baselines.offline_ideal import CentralizedOfflineSystem, OfflineIdealBackend
from repro.baselines.online_ideal import OnlineIdealSystem
from repro.baselines.crec import CRecFrontend, OfflineCRecBackend
from repro.baselines.mahout import (
    clus_mahout_engine,
    mahout_single_engine,
    phoenix_engine,
    run_clus_mahout,
    run_crec_backend,
    run_exhaustive,
    run_mahout_single,
)
from repro.baselines.p2p import P2PRecommender, P2PTrafficReport
from repro.baselines.tivo import TivoClient, TivoServer, TivoSystem

__all__ = [
    "ExactKnnIndex",
    "exact_knn_table",
    "CentralizedOfflineSystem",
    "OfflineIdealBackend",
    "OnlineIdealSystem",
    "CRecFrontend",
    "OfflineCRecBackend",
    "clus_mahout_engine",
    "mahout_single_engine",
    "phoenix_engine",
    "run_clus_mahout",
    "run_crec_backend",
    "run_exhaustive",
    "run_mahout_single",
    "P2PRecommender",
    "P2PTrafficReport",
    "TivoClient",
    "TivoServer",
    "TivoSystem",
]
