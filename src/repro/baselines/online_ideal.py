"""Online-Ideal: exact KNN before every single recommendation.

The quality upper bound of Figures 3, 6 and 8.  The paper calls it
"inapplicable due to its huge response times" -- which is precisely
what Figure 8 shows and what our measured :attr:`last_service_time_s`
feeds into the response-time experiments.

Each request rebuilds a global similarity index over *all* profiles
(no staleness whatsoever) and then serves the shared front-end recipe:
Algorithm 2 over ``Nu + KNN(Nu) + k randoms``, with every row exact
and fresh.  The per-request index build is the honest cost of global
knowledge at request time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.baselines.exact import ExactKnnIndex
from repro.core.recommend import recommend_most_popular
from repro.core.tables import ProfileTable
from repro.datasets.schema import Trace
from repro.sim.randomness import derive_rng


@dataclass
class OnlineIdealOutcome:
    """One fully-fresh recommendation response."""

    user_id: int
    timestamp: float
    recommendations: list[int]
    neighbors: list[int] = field(default_factory=list)
    service_time_s: float = 0.0


class OnlineIdealSystem:
    """Centralized recommender with per-request global KNN."""

    def __init__(
        self,
        k: int = 10,
        r: int = 10,
        metric: str = "cosine",
        seed: int = 0,
    ) -> None:
        self.k = k
        self.r = r
        self.metric = metric
        self.profiles = ProfileTable()
        self.requests_served = 0
        self.last_service_time_s = 0.0
        self._rng = derive_rng(seed, "online-ideal:frontend")

    def record_rating(
        self, user_id: int, item: int, value: float, timestamp: float = 0.0
    ) -> None:
        """Update the profile table with one fresh opinion."""
        self.profiles.record(user_id, item, value, timestamp)

    def request(self, user_id: int, now: float = 0.0) -> OnlineIdealOutcome:
        """Compute the ideal KNN *now*, then serve the shared front-end.

        Candidate set = fresh exact ``Nu``, fresh exact ``KNN(Nu)``,
        plus ``k`` random users -- the same recipe every other system
        uses, with zero staleness anywhere.
        """
        start = time.perf_counter()
        profile = self.profiles.get_or_create(user_id)
        liked_sets = self.profiles.liked_sets()
        index = ExactKnnIndex(liked_sets, metric=self.metric)

        neighbors = [n.user_id for n in index.topk(user_id, self.k)]
        candidates: set[int] = set(neighbors)
        for neighbor in neighbors:
            candidates.update(n.user_id for n in index.topk(neighbor, self.k))
        others = [uid for uid in liked_sets if uid != user_id]
        if others:
            draw = min(self.k, len(others))
            candidates.update(self._rng.sample(others, draw))
        candidates.discard(user_id)

        candidate_liked = {uid: liked_sets[uid] for uid in candidates}
        recommendations = recommend_most_popular(
            profile.rated_items(), candidate_liked, self.r
        )
        self.last_service_time_s = time.perf_counter() - start
        self.requests_served += 1
        return OnlineIdealOutcome(
            user_id=user_id,
            timestamp=now,
            recommendations=[rec.item_id for rec in recommendations],
            neighbors=neighbors,
            service_time_s=self.last_service_time_s,
        )

    def replay(
        self,
        trace: Trace,
        on_request: Optional[Callable[[OnlineIdealOutcome], None]] = None,
    ) -> int:
        """Replay a trace with a fresh ideal KNN at every rating."""
        served_before = self.requests_served
        for rating in trace:
            self.record_rating(rating.user, rating.item, rating.value, rating.timestamp)
            outcome = self.request(rating.user, now=rating.timestamp)
            if on_request is not None:
                on_request(outcome)
        return self.requests_served - served_before
