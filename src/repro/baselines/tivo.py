"""TiVo-style item-based hybrid recommender (Section 2.4's contrast).

    "TiVo [16] proposed a hybrid recommendation architecture similar
    to ours but with several important differences.  First, it
    considers an item-based CF system.  Second, it does not completely
    decentralize the personalization process.  TiVo only offloads the
    computation of item recommendation scores to clients.  The
    computation of the correlations between items is achieved on the
    server side.  Since the latter operation is extremely expensive,
    TiVo's server only computes new correlations every two weeks,
    while its clients identify new recommendations once a day.  This
    makes TiVo unsuitable for dynamic websites dealing in real time
    with continuous streams of items."

This module implements that architecture faithfully so the claim can
be measured (``benchmarks/bench_tivo_comparison.py``):

* :class:`TivoServer` -- computes the item-item correlation matrix
  (cosine over the items' rater sets) on a long period;
* :class:`TivoClient` -- scores unseen items against the user's liked
  items using the shipped correlation rows (the part TiVo offloads);
* :class:`TivoSystem` -- the replayable whole.

The failure mode is structural: an item published *after* the last
correlation run has no row at all, so no client can ever recommend
it until the next biweekly recompute -- fatal on a news workload
where most items live for a day or two.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.baselines.exact import ExactKnnIndex
from repro.core.tables import ProfileTable
from repro.datasets.schema import Trace
from repro.sim.clock import WEEK


@dataclass
class CorrelationRun:
    """One server-side item-item correlation computation."""

    at: float
    wall_clock_s: float
    items: int


class TivoServer:
    """Periodic item-item correlation computation (the expensive half)."""

    def __init__(
        self,
        profiles: ProfileTable,
        correlation_period_s: float = 2 * WEEK,
        top_correlated: int = 30,
    ) -> None:
        if correlation_period_s <= 0:
            raise ValueError("correlation period must be positive")
        if top_correlated < 1:
            raise ValueError("need at least one correlated item per row")
        self.profiles = profiles
        self.correlation_period_s = correlation_period_s
        self.top_correlated = top_correlated
        #: item -> [(correlated item, score)], best first.
        self.correlations: dict[int, list[tuple[int, float]]] = {}
        self.history: list[CorrelationRun] = []
        self._next_due = 0.0

    def maybe_recompute(self, now: float) -> bool:
        """Run the biweekly job if its schedule says so."""
        if now < self._next_due:
            return False
        self.recompute(now)
        periods = int(now / self.correlation_period_s) + 1
        self._next_due = periods * self.correlation_period_s
        return True

    def recompute(self, now: float = 0.0) -> None:
        """Item-item cosine over the items' rater sets.

        Transposes the profile table into item -> raters and reuses
        the exact-KNN index machinery (an item is "similar" to items
        liked by the same users -- classic item-based CF [38]).
        """
        start = time.perf_counter()
        raters: dict[int, set[int]] = {}
        for user in self.profiles.users():
            for item in self.profiles.get(user).liked_items():
                raters.setdefault(item, set()).add(user)
        frozen = {item: frozenset(users) for item, users in raters.items()}
        self.correlations = {}
        if frozen:
            index = ExactKnnIndex(frozen)
            for item in frozen:
                neighbors = index.topk(item, self.top_correlated)
                self.correlations[item] = [
                    (n.user_id, n.score) for n in neighbors if n.score > 0
                ]
        elapsed = time.perf_counter() - start
        self.history.append(
            CorrelationRun(at=now, wall_clock_s=elapsed, items=len(frozen))
        )

    def correlation_rows(
        self, items: frozenset[int]
    ) -> dict[int, list[tuple[int, float]]]:
        """The rows a client needs: one per item the user liked.

        Items unknown to the last correlation run simply have no row
        -- the staleness hole at the heart of Section 2.4's argument.
        """
        return {
            item: self.correlations[item]
            for item in items
            if item in self.correlations
        }


class TivoClient:
    """Client-side scoring (the part TiVo offloads to set-top boxes)."""

    @staticmethod
    def recommend(
        liked: frozenset[int],
        rated: frozenset[int],
        rows: dict[int, list[tuple[int, float]]],
        r: int,
    ) -> list[int]:
        """Sum correlation scores from every liked item; top-r unseen."""
        if r < 1:
            raise ValueError("r must be at least 1")
        scores: dict[int, float] = {}
        for item in liked:
            for other, score in rows.get(item, ()):
                if other not in rated:
                    scores[other] = scores.get(other, 0.0) + score
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return [item for item, _ in ranked[:r]]


@dataclass
class TivoOutcome:
    """One TiVo recommendation response."""

    user_id: int
    timestamp: float
    recommendations: list[int]
    rows_available: int = 0


class TivoSystem:
    """Replayable TiVo: biweekly server correlations + client scoring."""

    def __init__(
        self,
        r: int = 10,
        correlation_period_s: float = 2 * WEEK,
        top_correlated: int = 30,
    ) -> None:
        self.r = r
        self.profiles = ProfileTable()
        self.server = TivoServer(
            self.profiles,
            correlation_period_s=correlation_period_s,
            top_correlated=top_correlated,
        )
        self.client = TivoClient()
        self.requests_served = 0

    def record_rating(
        self, user_id: int, item: int, value: float, timestamp: float = 0.0
    ) -> None:
        """Update the profile table with one fresh opinion."""
        self.profiles.record(user_id, item, value, timestamp)

    def request(self, user_id: int, now: float = 0.0) -> TivoOutcome:
        """One hybrid round trip: rows from the server, scoring client-side."""
        self.server.maybe_recompute(now)
        profile = self.profiles.get_or_create(user_id)
        rows = self.server.correlation_rows(profile.liked_items())
        recommendations = self.client.recommend(
            profile.liked_items(), profile.rated_items(), rows, self.r
        )
        self.requests_served += 1
        return TivoOutcome(
            user_id=user_id,
            timestamp=now,
            recommendations=recommendations,
            rows_available=len(rows),
        )

    def recommend_for(self, user_id: int, now: float, n: int) -> list[int]:
        """Quality-protocol adapter surface."""
        return self.request(user_id, now=now).recommendations[:n]

    def replay(
        self,
        trace: Trace,
        on_request: Optional[Callable[[TivoOutcome], None]] = None,
    ) -> int:
        """Replay a trace; every rating also asks for recommendations."""
        served_before = self.requests_served
        for rating in trace:
            self.record_rating(rating.user, rating.item, rating.value, rating.timestamp)
            outcome = self.request(rating.user, now=rating.timestamp)
            if on_request is not None:
                on_request(outcome)
        return self.requests_served - served_before
