"""The fully decentralized (P2P) recommender baseline.

Section 2.3 / 5.6: every user machine joins a gossip overlay (peer
sampling + epidemic clustering) and refines its own KNN view by
periodic exchanges -- "typically every minute" -- shipping its view's
profiles both ways each time.  Recommendations are computed locally
from the KNN view with Algorithm 2, with no server anywhere.

The decisive comparison is bandwidth: continuous gossip costs each
Digg node ~24MB over the two-week trace while a HyRec widget moves
~8kB (Section 5.6).  :class:`P2PRecommender` meters the real wire
bytes of every exchange (JSON, uncompressed, as in the deployed
P2P systems the paper cites) and, because simulating 20,160 cycles of
a large overlay is wasteful, can extrapolate steady-state per-cycle
traffic to the full trace duration -- the measured/extrapolated split
is explicit in :class:`P2PTrafficReport`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.profiles import Profile
from repro.core.recommend import recommend_most_popular
from repro.core.similarity import SetMetric, cosine
from repro.gossip.clustering import ClusteringOverlay
from repro.gossip.peer_sampling import PeerSamplingService
from repro.messages import MessageMeter, encode_json
from repro.sim.clock import MINUTE
from repro.sim.randomness import derive_seed


@dataclass(frozen=True)
class P2PTrafficReport:
    """Bandwidth accounting for a P2P run.

    ``measured_*`` fields come from real serialized exchanges;
    ``extrapolated_total_bytes_per_node`` projects the steady-state
    per-cycle traffic to ``target_cycles`` (the full trace duration).
    """

    nodes: int
    measured_cycles: int
    measured_total_bytes: int
    measured_bytes_per_node: float
    bytes_per_node_per_cycle: float
    target_cycles: int
    extrapolated_total_bytes_per_node: float


class P2PRecommender:
    """All user machines + the gossip stack + local recommendation."""

    def __init__(
        self,
        k: int = 10,
        r: int = 10,
        view_size: int = 16,
        cycle_period_s: float = MINUTE,
        metric: SetMetric = cosine,
        seed: int = 0,
    ) -> None:
        self.k = k
        self.r = r
        self.cycle_period_s = cycle_period_s
        self.profiles: dict[int, Profile] = {}
        self.peer_sampling = PeerSamplingService(
            view_size=view_size, seed=derive_seed(seed, "p2p:rps")
        )
        self.overlay = ClusteringOverlay(
            profile_provider=self._liked_of,
            peer_sampling=self.peer_sampling,
            k=k,
            metric=metric,
            seed=derive_seed(seed, "p2p:clustering"),
        )
        self.meter = MessageMeter()
        self._per_node_bytes: dict[int, int] = {}
        self._cycles_at_reset = 0

    # --- membership & profiles ---------------------------------------------

    def _liked_of(self, node_id: int) -> frozenset[int]:
        profile = self.profiles.get(node_id)
        return profile.liked_items() if profile is not None else frozenset()

    def add_user(self, user_id: int) -> None:
        """A machine joins the overlay with an empty profile."""
        if user_id not in self.profiles:
            self.profiles[user_id] = Profile(user_id)
            self.overlay.add_node(user_id)
            self._per_node_bytes.setdefault(user_id, 0)

    def record_rating(
        self, user_id: int, item: int, value: float, timestamp: float = 0.0
    ) -> None:
        """A local rating: updates only this machine's profile."""
        self.add_user(user_id)
        self.profiles[user_id].add(item, value, timestamp)

    @property
    def num_nodes(self) -> int:
        """Machines currently in the overlay."""
        return len(self.profiles)

    # --- gossip + bandwidth ----------------------------------------------------

    def run_cycle(self) -> int:
        """One overlay cycle; meters the wire bytes of every exchange."""
        exchanges = self.overlay.cycle()
        for initiator, partner, sent_ids, received_ids in (
            self.overlay.last_cycle_exchanges
        ):
            sent_bytes = self._payload_bytes(sent_ids)
            received_bytes = self._payload_bytes(received_ids)
            # P2P exchanges are raw JSON: record wire == raw.
            self.meter.record_bytes("p2p-exchange", sent_bytes, sent_bytes)
            self.meter.record_bytes("p2p-exchange", received_bytes, received_bytes)
            # Each endpoint both sends and receives one package.
            self._per_node_bytes[initiator] = (
                self._per_node_bytes.get(initiator, 0) + sent_bytes + received_bytes
            )
            self._per_node_bytes[partner] = (
                self._per_node_bytes.get(partner, 0) + sent_bytes + received_bytes
            )
        return exchanges

    def run_cycles(self, count: int) -> None:
        """Run several gossip cycles back to back."""
        for _ in range(count):
            self.run_cycle()

    def reset_traffic(self) -> None:
        """Zero the meters (e.g. to exclude bootstrap warm-up traffic)."""
        self.meter.reset()
        self._per_node_bytes = {uid: 0 for uid in self._per_node_bytes}
        self._cycles_at_reset = self.overlay.cycles_run

    # --- churn -----------------------------------------------------------------

    def set_offline(self, user_id: int) -> None:
        """A machine disconnects: profile and local view survive on it,
        but the overlay can no longer reach it."""
        self.overlay.suspend_node(user_id)

    def set_online(self, user_id: int) -> None:
        """A machine reconnects and re-joins the overlay."""
        if user_id in self.profiles:
            self.overlay.resume_node(user_id)

    def apply_churn(self, departed: set[int], returned: set[int]) -> None:
        """Apply one churn step (see :class:`repro.gossip.churn`)."""
        for user_id in departed:
            self.set_offline(user_id)
        for user_id in returned:
            self.set_online(user_id)

    def online_users(self) -> list[int]:
        """Users whose machines currently participate in gossip."""
        return [
            uid for uid in self.profiles if self.overlay.is_online(uid)
        ]

    def _payload_bytes(self, node_ids: list[int]) -> int:
        """Size of one gossip package: descriptors + full profiles."""
        payload = {
            str(nid): self.profiles[nid].to_payload()
            for nid in node_ids
            if nid in self.profiles
        }
        return len(encode_json(payload))

    # --- recommendation ------------------------------------------------------------

    def recommend(self, user_id: int, n: int | None = None) -> list[int]:
        """Local Algorithm 2 over the node's current KNN view."""
        profile = self.profiles[user_id]
        neighbors = self.overlay.nodes[user_id].neighbors
        candidate_liked = {nid: self._liked_of(nid) for nid in neighbors}
        recommendations = recommend_most_popular(
            profile.rated_items(), candidate_liked, self.r
        )
        items = [rec.item_id for rec in recommendations]
        return items if n is None else items[:n]

    def knn_table(self) -> dict[int, list[int]]:
        """Every node's current KNN view (for quality metrics)."""
        return self.overlay.knn_table()

    # --- reporting -------------------------------------------------------------------

    def traffic_report(self, trace_duration_s: float) -> P2PTrafficReport:
        """Bandwidth summary, extrapolated to a full trace duration.

        Only cycles since the last :meth:`reset_traffic` count as
        measured; the extrapolation projects their steady-state
        per-cycle traffic onto the full duration.
        """
        nodes = max(1, self.num_nodes)
        measured_cycles = self.overlay.cycles_run - self._cycles_at_reset
        total = self.meter.reading("p2p-exchange").wire_bytes
        per_node = sum(self._per_node_bytes.values()) / nodes
        per_node_per_cycle = per_node / measured_cycles if measured_cycles else 0.0
        target_cycles = int(trace_duration_s / self.cycle_period_s)
        return P2PTrafficReport(
            nodes=self.num_nodes,
            measured_cycles=measured_cycles,
            measured_total_bytes=total,
            measured_bytes_per_node=per_node,
            bytes_per_node_per_cycle=per_node_per_cycle,
            target_cycles=target_cycles,
            extrapolated_total_bytes_per_node=per_node_per_cycle * target_cycles,
        )
