"""Offline-Ideal: periodic brute-force KNN on a back-end server.

The centralized reference architecture of Figure 1 (top): the
front-end answers recommendation requests in real time from the KNN
table, while a back-end recomputes that table with global knowledge
every ``period`` (one week in Figure 3; 24h/1h variants in Figure 6).

Between two recomputations the neighborhoods are frozen -- that is
the step-like behaviour of the Offline-Ideal curve in Figure 3 and
the reason new users "will not benefit from any personalization" until
the next offline cycle (Section 5.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.baselines.exact import exact_knn_table
from repro.core.recommend import recommend_most_popular
from repro.core.sampler import HyRecSampler
from repro.core.tables import ProfileTable
from repro.datasets.schema import Trace
from repro.sim.clock import WEEK
from repro.sim.randomness import derive_rng


class DictKnnView:
    """Adapter exposing a plain ``{uid: [neighbors]}`` dict to the
    :class:`~repro.core.sampler.HyRecSampler` interface."""

    def __init__(self, table_ref: Callable[[], dict[int, list[int]]]) -> None:
        self._table_ref = table_ref

    def neighbors_of(self, user_id: int) -> list[int]:
        return list(self._table_ref().get(user_id, ()))


@dataclass
class RecomputeRecord:
    """One back-end KNN-selection run."""

    at: float  # simulated time of the run
    wall_clock_s: float  # real (measured) computation time
    users: int


class OfflineIdealBackend:
    """Periodic exact-KNN computation over profile snapshots."""

    def __init__(
        self,
        profiles: ProfileTable,
        k: int = 10,
        period_s: float = WEEK,
        metric: str = "cosine",
    ) -> None:
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.profiles = profiles
        self.k = k
        self.period_s = period_s
        self.metric = metric
        self.knn_table: dict[int, list[int]] = {}
        self.history: list[RecomputeRecord] = []
        self._next_due = 0.0

    def maybe_recompute(self, now: float) -> bool:
        """Run the periodic job if its schedule says so."""
        if now < self._next_due:
            return False
        self.recompute(now)
        # Catch up the schedule without replaying missed periods: a
        # back-end that was due several times while nobody was active
        # still only produces one fresh table.
        periods_elapsed = int(now / self.period_s) + 1
        self._next_due = periods_elapsed * self.period_s
        return True

    def recompute(self, now: float) -> None:
        """One full back-end pass: snapshot profiles, exact KNN."""
        liked = self.profiles.liked_sets()
        start = time.perf_counter()
        self.knn_table = exact_knn_table(liked, self.k, metric=self.metric)
        elapsed = time.perf_counter() - start
        self.history.append(
            RecomputeRecord(at=now, wall_clock_s=elapsed, users=len(liked))
        )

    def neighbors_of(self, user_id: int) -> list[int]:
        """The (possibly stale) neighborhood of ``user_id``."""
        return list(self.knn_table.get(user_id, ()))

    @property
    def runs(self) -> int:
        """Number of back-end passes executed so far."""
        return len(self.history)


@dataclass
class CentralizedOutcome:
    """One front-end recommendation response."""

    user_id: int
    timestamp: float
    recommendations: list[int]
    neighbors: list[int] = field(default_factory=list)


class CentralizedOfflineSystem:
    """Front-end + Offline-Ideal back-end, replayable like HyRec.

    All of the paper's quality contenders "share the same front-end"
    (Section 5.4): requests are answered by running Algorithm 2 over a
    candidate set built exactly like CRec's and HyRec's --
    ``Nu + KNN(Nu) + k randoms`` -- only here the KNN rows come from
    the periodically recomputed *exact* table.  Recommendations are
    live; neighborhoods are as stale as the back-end period, which is
    precisely what Figure 6 isolates.
    """

    def __init__(
        self,
        k: int = 10,
        r: int = 10,
        period_s: float = WEEK,
        metric: str = "cosine",
        seed: int = 0,
    ) -> None:
        self.k = k
        self.r = r
        self.profiles = ProfileTable()
        self.backend = OfflineIdealBackend(
            self.profiles, k=k, period_s=period_s, metric=metric
        )
        self.sampler = HyRecSampler(
            DictKnnView(lambda: self.backend.knn_table),
            user_registry=None,
            k=k,
            rng=derive_rng(seed, "offline-ideal:frontend"),
        )
        self.requests_served = 0

    def record_rating(
        self, user_id: int, item: int, value: float, timestamp: float = 0.0
    ) -> None:
        """Update the profile table with one fresh opinion."""
        self.profiles.record(user_id, item, value, timestamp)
        self.sampler.register_user(user_id)

    def request(self, user_id: int, now: float = 0.0) -> CentralizedOutcome:
        """Answer one recommendation request from the current table."""
        self.backend.maybe_recompute(now)
        profile = self.profiles.get_or_create(user_id)
        candidates = self.sampler.sample(user_id)
        candidate_liked = {
            nid: self.profiles.get(nid).liked_items()
            for nid in candidates
            if nid in self.profiles
        }
        recommendations = recommend_most_popular(
            profile.rated_items(), candidate_liked, self.r
        )
        self.requests_served += 1
        return CentralizedOutcome(
            user_id=user_id,
            timestamp=now,
            recommendations=[rec.item_id for rec in recommendations],
            neighbors=self.backend.neighbors_of(user_id),
        )

    def replay(
        self,
        trace: Trace,
        on_request: Optional[Callable[[CentralizedOutcome], None]] = None,
    ) -> int:
        """Replay a trace: every rating updates the profile and asks
        for recommendations, exactly like the HyRec replay loop."""
        served_before = self.requests_served
        for rating in trace:
            self.record_rating(rating.user, rating.item, rating.value, rating.timestamp)
            outcome = self.request(rating.user, now=rating.timestamp)
            if on_request is not None:
                on_request(outcome)
        return self.requests_served - served_before
