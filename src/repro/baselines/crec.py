"""Offline-CRec: HyRec's algorithm run centrally (the cost baseline).

Section 5.4 picks Offline-CRec as the cheapest centralized solution:
the *same* sampling-based KNN as HyRec, but executed periodically on a
map-reduce back-end instead of in browsers.  Its front-end (called
simply **CRec** in Figures 8-9) answers requests in real time by
running item recommendation *server-side* over the candidate set built
from the KNN table -- the exact work HyRec offloads to the widget.

Both halves here do real work and are *measured*, not modeled:

* :class:`OfflineCRecBackend` runs the sampling iterations on a
  :class:`~repro.mapreduce.engine.MapReduceEngine` (real results,
  modeled 4-core wall-clock -- the Figure 7 / Table 3 numbers);
* :class:`CRecFrontend.serve` runs Algorithm 2 in-process and reports
  its measured service time (the Figure 8 / 9 numbers).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.recommend import recommend_most_popular
from repro.core.sampler import HyRecSampler
from repro.core.tables import KnnTable, ProfileTable
from repro.mapreduce.engine import MapReduceEngine, MapReduceResult
from repro.mapreduce.jobs import crec_knn_job
from repro.sim.clock import DAY
from repro.sim.randomness import derive_rng


@dataclass
class BackendRun:
    """One offline KNN-selection pass of the CRec back-end."""

    at: float
    wall_clock_s: float  # modeled 4-core cluster time
    cpu_seconds: float  # measured single-thread work
    users: int


class OfflineCRecBackend:
    """Periodic sampling-based KNN on the map-reduce substrate."""

    def __init__(
        self,
        profiles: ProfileTable,
        k: int = 10,
        period_s: float = 2 * DAY,
        iterations: int = 4,
        engine: MapReduceEngine | None = None,
        seed: int = 0,
    ) -> None:
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.profiles = profiles
        self.k = k
        self.period_s = period_s
        self.iterations = iterations
        self.engine = engine if engine is not None else MapReduceEngine(
            workers=4, task_overhead_s=1e-3, name="phoenix-4core"
        )
        self.seed = seed
        self.knn_table = KnnTable()
        self.history: list[BackendRun] = []
        self._next_due = 0.0

    def maybe_recompute(self, now: float) -> bool:
        """Run the periodic job if due (same schedule semantics as
        :class:`~repro.baselines.offline_ideal.OfflineIdealBackend`)."""
        if now < self._next_due:
            return False
        self.recompute(now)
        periods_elapsed = int(now / self.period_s) + 1
        self._next_due = periods_elapsed * self.period_s
        return True

    def recompute(self, now: float = 0.0) -> MapReduceResult:
        """One full back-end pass; returns the map-reduce profile."""
        liked = self.profiles.liked_sets()
        table, result = crec_knn_job(
            self.engine,
            liked,
            k=self.k,
            iterations=self.iterations,
            seed=derive_rng(self.seed, f"crec:run:{len(self.history)}").randrange(
                2**31
            ),
        )
        for user, neighbors in table.items():
            self.knn_table.update(user, neighbors)
        self.history.append(
            BackendRun(
                at=now,
                wall_clock_s=result.wall_clock_s,
                cpu_seconds=result.cpu_seconds,
                users=len(liked),
            )
        )
        return result


@dataclass
class FrontendResponse:
    """One CRec front-end answer with its measured cost."""

    user_id: int
    recommendations: list[int]
    candidate_count: int
    service_time_s: float


class CRecFrontend:
    """Real-time server-side recommendation from the offline table."""

    def __init__(
        self,
        profiles: ProfileTable,
        knn_table: KnnTable,
        k: int = 10,
        r: int = 10,
        seed: int = 0,
    ) -> None:
        self.profiles = profiles
        self.knn_table = knn_table
        self.k = k
        self.r = r
        self.sampler = HyRecSampler(
            knn_table,
            user_registry=profiles.users(),
            k=k,
            rng=derive_rng(seed, "crec:frontend"),
        )

    def register_user(self, user_id: int) -> None:
        """Keep the random-candidate registry in sync with profiles."""
        self.sampler.register_user(user_id)

    def serve(self, user_id: int) -> FrontendResponse:
        """Answer one request; measured server-side work.

        This is the per-request work the paper times for CRec in
        Figure 8: build the candidate set from the KNN table and run
        item recommendation over the candidate profiles, all on the
        server.
        """
        start = time.perf_counter()
        profile = self.profiles.get_or_create(user_id)
        candidate_ids = self.sampler.sample(user_id)
        candidate_liked = {
            uid: self.profiles.get(uid).liked_items()
            for uid in candidate_ids
            if uid in self.profiles
        }
        recommendations = recommend_most_popular(
            profile.rated_items(), candidate_liked, self.r
        )
        elapsed = time.perf_counter() - start
        return FrontendResponse(
            user_id=user_id,
            recommendations=[rec.item_id for rec in recommendations],
            candidate_count=len(candidate_liked),
            service_time_s=elapsed,
        )
