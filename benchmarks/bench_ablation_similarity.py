"""Bench A3 -- similarity-metric ablation.

The paper uses cosine "but any other metric could be used"
(``setSimilarity()`` in Table 1).  This bench swaps in Jaccard and
overlap and checks the system stays healthy: every metric's achieved
view similarity approaches its own ideal, and recommendation quality
stays in the same ballpark across metrics.
"""

from conftest import attach_report, run_once

from repro.eval.ablations import run_similarity_ablation


def test_similarity_metric_ablation(benchmark):
    result = run_once(benchmark, run_similarity_ablation, scale=0.08, seed=0)
    attach_report(benchmark, result)

    for metric in ("cosine", "jaccard", "overlap"):
        achieved = result.view_similarity[metric]
        ideal = result.ideal[metric]
        assert ideal > 0, metric
        assert achieved >= 0.6 * ideal, metric

    qualities = result.quality_at_10
    assert all(q > 0 for q in qualities.values())
    best = max(qualities.values())
    worst = min(qualities.values())
    assert worst >= best * 0.5  # same ballpark

    benchmark.extra_info["quality_at_10"] = dict(qualities)
    benchmark.extra_info["view_similarity"] = {
        name: round(value, 4) for name, value in result.view_similarity.items()
    }
