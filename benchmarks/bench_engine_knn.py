"""Engine benchmark: python vs vectorized KNN, kernel and replay level.

Run directly (writes ``BENCH_engine.json`` next to the repo root so the
perf trajectory is tracked across PRs)::

    PYTHONPATH=src python benchmarks/bench_engine_knn.py
    PYTHONPATH=src python benchmarks/bench_engine_knn.py --quick

Two measurements:

1. **Kernel**: one user's KNN selection against 1k / 10k candidates --
   :func:`repro.core.knn.knn_select` over Python sets vs the batched
   kernels of :class:`repro.engine.LikedMatrix`.  Both the CSR scan
   (what small online requests run) and the CSC inverted-index kernel
   are timed separately; the headline ``vectorized_ms`` is the
   adaptive KNN entry point (:meth:`LikedMatrix.knn_intersections`),
   the same kernel choice the serving path makes.  Every path must
   return the identical top-k (scores bit-for-bit).
2. **Replay**: a full ``eval``-style ML1 trace replay through
   :class:`repro.core.system.HyRecSystem` with ``engine="python"`` vs
   ``engine="vectorized"`` -- the complete request round trip
   including wire rendering and metering, which must stay
   byte-identical.  The headline number uses the raw-JSON wire (the
   "json" curve of Figure 10); the gzip wire is reported too, where
   the shared compression cost bounds the achievable ratio.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import numpy as np

from repro.core.config import HyRecConfig
from repro.core.knn import knn_select
from repro.core.system import HyRecSystem
from repro.core.tables import ProfileTable
from repro.datasets import load_dataset
from repro.engine import LikedMatrix, rank_descending, similarity_scores

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def bench_kernel(
    n_candidates: int,
    profile_size: int = 40,
    n_items: int = 2000,
    k: int = 10,
    reps: int = 20,
    seed: int = 0,
) -> dict:
    """Time one KNN selection over ``n_candidates`` on both paths."""
    rng = random.Random(seed)
    table = ProfileTable()
    matrix = LikedMatrix(table)
    for uid in range(n_candidates + 1):
        for item in rng.sample(range(n_items), profile_size):
            table.record(uid, item, 1.0 if rng.random() < 0.8 else 0.0)

    liked = {
        uid: table.get(uid).liked_items() for uid in range(1, n_candidates + 1)
    }
    user_liked = table.get(0).liked_items()

    start = time.perf_counter()
    for _ in range(reps):
        python_top = knn_select(user_liked, liked, k=k)
    python_s = (time.perf_counter() - start) / reps

    ids_list = list(range(1, n_candidates + 1))
    ids = np.asarray(ids_list, dtype=np.int64)
    matrix.liked_sizes(ids_list)  # warm rows and postings once
    matrix.batch_intersections_csc(matrix.liked_row(0), ids)

    def run_auto() -> tuple:
        """The KNN-only entry point (adaptive kernel choice)."""
        user_cols = matrix.liked_row(0)
        inter, sizes = matrix.knn_intersections(user_cols, ids_list)
        scores = similarity_scores("cosine", inter, float(user_cols.size), sizes)
        return scores, rank_descending(scores)[:k]

    def run_csr() -> tuple:
        user_cols = matrix.liked_row(0)
        indices, indptr, sizes = matrix.gather_liked(ids_list)
        inter = matrix.batch_intersections(user_cols, indices, indptr)
        scores = similarity_scores("cosine", inter, float(user_cols.size), sizes)
        return scores, rank_descending(scores)[:k]

    def run_csc() -> tuple:
        user_cols = matrix.liked_row(0)
        inter = matrix.batch_intersections_csc(user_cols, ids)
        sizes = matrix.liked_sizes(ids_list)
        scores = similarity_scores("cosine", inter, float(user_cols.size), sizes)
        return scores, rank_descending(scores)[:k]

    timings = {}
    for name, fn in (("auto", run_auto), ("csr", run_csr), ("csc", run_csc)):
        scores, top = fn()
        assert [n.user_id for n in python_top] == [int(ids[i]) for i in top]
        assert [n.score for n in python_top] == [float(scores[i]) for i in top]
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        timings[name] = (time.perf_counter() - start) / reps

    return {
        "candidates": n_candidates,
        "profile_size": profile_size,
        "python_ms": round(python_s * 1e3, 4),
        "vectorized_ms": round(timings["auto"] * 1e3, 4),
        "vectorized_csr_ms": round(timings["csr"] * 1e3, 4),
        "vectorized_csc_ms": round(timings["csc"] * 1e3, 4),
        "speedup": round(python_s / timings["auto"], 2),
        "speedup_csr": round(python_s / timings["csr"], 2),
        "speedup_csc": round(python_s / timings["csc"], 2),
        "topk_identical": True,
    }


def bench_replay(scale: float, compress: bool, seed: int = 0) -> dict:
    """Replay ML1 at ``scale`` through both engines; verify parity."""
    trace = load_dataset("ML1", scale=scale, seed=seed)
    timings: dict[str, float] = {}
    wire_bytes: dict[str, int] = {}
    outcome_digests: dict[str, int] = {}
    for engine in ("python", "vectorized"):
        system = HyRecSystem(
            HyRecConfig(k=10, compress=compress, engine=engine), seed=seed
        )
        digest: list = []
        start = time.perf_counter()
        system.replay(
            trace, on_request=lambda o: digest.append(tuple(o.recommendations))
        )
        timings[engine] = time.perf_counter() - start
        wire_bytes[engine] = system.server.meter.total_wire_bytes
        outcome_digests[engine] = hash(tuple(digest))

    return {
        "dataset": "ML1",
        "scale": scale,
        "requests": len(trace),
        "compress": compress,
        "python_s": round(timings["python"], 3),
        "vectorized_s": round(timings["vectorized"], 3),
        "speedup": round(timings["python"] / timings["vectorized"], 2),
        "wire_bytes_identical": wire_bytes["python"] == wire_bytes["vectorized"],
        "recommendations_identical": (
            outcome_digests["python"] == outcome_digests["vectorized"]
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=0.15, help="ML1 replay scale"
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller kernel reps + replay"
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_engine.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    reps = 5 if args.quick else 20
    scale = min(args.scale, 0.05) if args.quick else args.scale

    report = {"kernel": [], "replay": []}
    for n_candidates in (1000, 10000):
        entry = bench_kernel(n_candidates, reps=reps)
        report["kernel"].append(entry)
        print(
            f"kernel {n_candidates:>6} candidates: "
            f"python {entry['python_ms']:8.3f}ms  "
            f"vectorized {entry['vectorized_ms']:8.3f}ms  "
            f"speedup {entry['speedup']:5.1f}x  "
            f"(csr {entry['speedup_csr']:.1f}x, csc {entry['speedup_csc']:.1f}x)"
        )

    for compress in (False, True):
        entry = bench_replay(scale, compress=compress)
        report["replay"].append(entry)
        wire = "gzip" if compress else "json"
        print(
            f"replay ML1@{scale} ({wire} wire): "
            f"python {entry['python_s']:7.2f}s  "
            f"vectorized {entry['vectorized_s']:7.2f}s  "
            f"speedup {entry['speedup']:5.2f}x  "
            f"bytes-identical={entry['wire_bytes_identical']}  "
            f"recs-identical={entry['recommendations_identical']}"
        )

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
