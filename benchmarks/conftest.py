"""Shared helpers for the benchmark suite.

Every bench regenerates one table or figure of the paper (see
DESIGN.md's experiment index), times it with pytest-benchmark, prints
the paper-style report (visible with ``-s``), and attaches the key
numbers to ``benchmark.extra_info`` so they land in the JSON output.

Scales are chosen so the full suite finishes on a laptop; run the
experiments at larger scales through ``python -m repro.eval.runner``.
"""

from __future__ import annotations


def run_once(benchmark, fn, **kwargs):
    """Execute ``fn(**kwargs)`` exactly once under the benchmark timer."""
    return benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)


def attach_report(benchmark, result) -> None:
    """Print the paper-style report and stash it in extra_info."""
    report = result.format_report()
    print()
    print(report)
    benchmark.extra_info["report"] = report
