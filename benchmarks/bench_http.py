"""End-to-end HTTP benchmark: the full stack over real sockets.

Run directly (writes ``BENCH_http.json`` next to the repo root so the
perf trajectory is tracked across PRs)::

    PYTHONPATH=src python benchmarks/bench_http.py
    PYTHONPATH=src python benchmarks/bench_http.py --quick
    PYTHONPATH=src python benchmarks/bench_http.py --smoke

Every prior benchmark measures an engine in-process; this one drives
the deployment the way the paper's Table 1 / Figure 10 deployment was
driven -- browsers hitting a web frontend -- through the asyncio front
door (:mod:`repro.web.async_server`): TCP, HTTP/1.1 keep-alive,
admission control, the L1 response cache, gzip bodies, wire metering.

Three scenarios:

1. **Closed-loop sweep** (the ``ab -c C`` shape): ``concurrency``
   looping workers per point, cache off (``cache_ttl=0``, every
   response exact) vs cache on (``cache_ttl=30``), recording
   p50/p95/p99 latency, throughput, cache hit rate, and shed rate.
   Headline check: at every concurrency level, cache-on p50 must beat
   cache-off p50 at the same offered load -- the multi-layer cache has
   to pay for itself end to end, not just in microbenchmarks.

2. **Open-loop points**: fixed arrival rates (fractions/multiples of
   the measured closed-loop capacity) fired on a schedule regardless
   of completions, latency measured from the scheduled send time --
   the arrival process that actually overloads servers.

3. **Shed**: a deliberately tiny admission bound
   (``http_max_concurrency=1``, ``http_max_pending=0``) hammered by 8
   closed-loop workers; asserts the front door sheds with ``503``
   rather than queueing unboundedly, and that the server's shed
   counter matches the client's count of 503s exactly.

``--smoke`` runs a seconds-long version of all three and validates the
report schema -- the CI gate.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.core.config import HyRecConfig
from repro.core.server import HyRecServer
from repro.sim.randomness import derive_rng
from repro.web import AsyncHyRecServer, HttpLoadDriver, fetch_stats

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_http.json"

CACHE_TTL_ON = 30.0


def build_server(
    num_users: int,
    profile_size: int,
    catalog: int,
    k: int,
    cache_ttl: float,
    engine: str,
    num_shards: int,
    executor: str,
    seed: int = 0,
) -> HyRecServer:
    """A server preloaded with fixed-size profiles and random KNN rows.

    Fresh per measurement point: the response cache, wire meters, and
    RNG streams all start from the same state, so points differ only
    in the knob under test.
    """
    rng = derive_rng(seed, "http-population")
    server = HyRecServer(
        HyRecConfig(
            k=k,
            r=10,
            engine=engine,
            num_shards=num_shards,
            executor=executor,
            cache_ttl=cache_ttl,
        ),
        seed=seed,
    )
    for user in range(num_users):
        for item in rng.sample(range(catalog), profile_size):
            value = 1.0 if rng.random() < 0.8 else 0.0
            server.record_rating(user, item, value, timestamp=0.0)
    users = list(range(num_users))
    for user in users:
        neighbors = [n for n in rng.sample(users, k + 1) if n != user][:k]
        server.knn_table.update(user, neighbors)
    return server


def run_point(
    args: argparse.Namespace,
    cache_ttl: float,
    concurrency: int,
    requests: int,
) -> dict:
    """One closed-loop measurement on a fresh deployment."""
    server = build_server(
        args.users,
        args.profile_size,
        args.catalog,
        args.k,
        cache_ttl,
        args.engine,
        args.shards,
        args.executor,
    )
    front = AsyncHyRecServer(server)
    try:
        front.start()
        driver = HttpLoadDriver(front.url, list(range(args.users)))
        result = driver.run_closed(requests=requests, concurrency=concurrency)
        stats = fetch_stats(front.url)
    finally:
        front.stop()
        server.close()
    lookups = stats["cache_hits"] + stats["cache_misses"]
    return {
        "cache": "on" if cache_ttl > 0 else "off",
        "cache_ttl_s": cache_ttl,
        "concurrency": concurrency,
        "requests": result.requests,
        "ok": result.ok,
        "errors": result.errors,
        "shed": result.shed,
        "shed_rate": result.shed_rate,
        "throughput_rps": result.throughput_rps,
        "p50_ms": result.p50_ms,
        "p95_ms": result.p95_ms,
        "p99_ms": result.p99_ms,
        "mean_ms": result.mean_ms,
        "cache_hit_rate": (
            stats["cache_hits"] / lookups if lookups else 0.0
        ),
        "online_requests_served_by_engine": stats["online_requests"],
        "wire_bytes": stats["wire_bytes"],
    }


def run_open_points(
    args: argparse.Namespace, capacity_rps: float, duration_s: float
) -> list[dict]:
    """Open-loop arrivals below and above the measured capacity."""
    points = []
    for factor in (0.5, 1.5):
        rps = max(5.0, capacity_rps * factor)
        server = build_server(
            args.users,
            args.profile_size,
            args.catalog,
            args.k,
            0.0,
            args.engine,
            args.shards,
            args.executor,
        )
        front = AsyncHyRecServer(server)
        try:
            front.start()
            driver = HttpLoadDriver(front.url, list(range(args.users)))
            result = driver.run_open(
                rps=rps, duration_s=duration_s, workers=args.open_workers
            )
            stats = fetch_stats(front.url)
        finally:
            front.stop()
            server.close()
        points.append(
            {
                "offered_rps": rps,
                "offered_vs_capacity": factor,
                "achieved_rps": result.throughput_rps,
                "requests": result.requests,
                "ok": result.ok,
                "shed": result.shed,
                "shed_rate": result.shed_rate,
                "errors": result.errors,
                "p50_ms": result.p50_ms,
                "p95_ms": result.p95_ms,
                "p99_ms": result.p99_ms,
                "server_shed_requests": stats["shed_requests"],
            }
        )
    return points


def run_shed_scenario(args: argparse.Namespace, requests: int) -> dict:
    """Tiny admission bound under closed-loop pressure: sheds, exactly."""
    server = build_server(
        args.users,
        args.profile_size,
        args.catalog,
        args.k,
        0.0,
        args.engine,
        args.shards,
        args.executor,
    )
    front = AsyncHyRecServer(server, max_concurrency=1, max_pending=0)
    try:
        front.start()
        driver = HttpLoadDriver(front.url, list(range(args.users)))
        result = driver.run_closed(requests=requests, concurrency=8)
        stats = fetch_stats(front.url)
    finally:
        front.stop()
        server.close()
    assert result.errors == 0, f"transport errors during shed run: {result.errors}"
    assert stats["shed_requests"] == result.shed, (
        "server shed counter disagrees with observed 503s: "
        f"{stats['shed_requests']} vs {result.shed}"
    )
    return {
        "max_concurrency": 1,
        "max_pending": 0,
        "concurrency": 8,
        "requests": result.requests,
        "ok": result.ok,
        "shed": result.shed,
        "shed_rate": result.shed_rate,
        "server_shed_requests": stats["shed_requests"],
        "p50_ok_ms": result.p50_ms,
    }


def check_cache_wins(closed_loop: list[dict]) -> dict:
    """Cache-on p50 strictly better than cache-off at equal concurrency."""
    by_key: dict[tuple[int, str], dict] = {
        (point["concurrency"], point["cache"]): point for point in closed_loop
    }
    comparisons = []
    passed = True
    for concurrency in sorted({p["concurrency"] for p in closed_loop}):
        off = by_key[(concurrency, "off")]
        on = by_key[(concurrency, "on")]
        better = on["p50_ms"] < off["p50_ms"]
        passed = passed and better
        comparisons.append(
            {
                "concurrency": concurrency,
                "p50_ms_cache_off": off["p50_ms"],
                "p50_ms_cache_on": on["p50_ms"],
                "speedup": (
                    off["p50_ms"] / on["p50_ms"] if on["p50_ms"] > 0 else 0.0
                ),
                "cache_on_hit_rate": on["cache_hit_rate"],
                "passed": better,
            }
        )
    return {"passed": passed, "comparisons": comparisons}


def validate_report(report: dict) -> None:
    """The BENCH_http.json schema contract (the CI smoke gate)."""
    for key in ("meta", "closed_loop", "open_loop", "shed", "checks"):
        assert key in report, f"report missing {key!r}"
    meta = report["meta"]
    for key in ("mode", "cores", "engine", "executor", "users"):
        assert key in meta, f"meta missing {key!r}"
    closed = report["closed_loop"]
    assert len({p["concurrency"] for p in closed}) >= 2, (
        "closed-loop sweep needs at least two concurrency levels"
    )
    assert {p["cache"] for p in closed} == {"on", "off"}, (
        "closed-loop sweep needs both cache on and cache off points"
    )
    point_keys = {
        "cache",
        "concurrency",
        "requests",
        "ok",
        "errors",
        "shed",
        "throughput_rps",
        "p50_ms",
        "p95_ms",
        "p99_ms",
        "cache_hit_rate",
    }
    for point in closed:
        missing = point_keys - set(point)
        assert not missing, f"closed-loop point missing {sorted(missing)}"
        assert point["errors"] == 0, f"transport errors in {point}"
    for point in report["open_loop"]:
        for key in ("offered_rps", "achieved_rps", "shed_rate", "p50_ms"):
            assert key in point, f"open-loop point missing {key!r}"
    shed = report["shed"]
    assert shed["server_shed_requests"] == shed["shed"], (
        "shed counter mismatch in shed scenario"
    )
    checks = report["checks"]
    assert checks["cache_on_p50_better"]["passed"], (
        "cache-on p50 did not beat cache-off: "
        f"{checks['cache_on_p50_better']['comparisons']}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller sweep")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-long run that still validates the report schema (CI)",
    )
    parser.add_argument("--users", type=int, default=None)
    parser.add_argument("--profile-size", type=int, default=40)
    parser.add_argument("--catalog", type=int, default=2000)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument(
        "--engine",
        choices=("python", "vectorized", "sharded"),
        default="vectorized",
    )
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--executor", choices=("serial", "thread", "process"), default="serial"
    )
    parser.add_argument("--open-workers", type=int, default=32)
    parser.add_argument(
        "--output", type=pathlib.Path, default=REPORT_PATH
    )
    args = parser.parse_args(argv)

    if args.smoke:
        mode, users, requests, levels, open_s = "smoke", 60, 240, (2, 4), 1.0
    elif args.quick:
        mode, users, requests, levels, open_s = "quick", 120, 600, (2, 8), 2.0
    else:
        mode, users, requests, levels, open_s = "full", 200, 1500, (1, 2, 8), 4.0
    if args.users is not None:
        users = args.users
    args.users = users

    closed_loop = []
    for concurrency in levels:
        for cache_ttl in (0.0, CACHE_TTL_ON):
            point = run_point(args, cache_ttl, concurrency, requests)
            closed_loop.append(point)
            print(
                f"closed c={concurrency} cache={point['cache']}: "
                f"p50 {point['p50_ms']:.2f} ms  p99 {point['p99_ms']:.2f} ms  "
                f"{point['throughput_rps']:.0f} rps  "
                f"hit rate {point['cache_hit_rate']:.2f}"
            )

    # Capacity reference for the open-loop arrival rates: the cache-off
    # closed-loop throughput at the sweep's highest concurrency.
    capacity = max(
        p["throughput_rps"] for p in closed_loop if p["cache"] == "off"
    )
    open_loop = run_open_points(args, capacity, open_s)
    for point in open_loop:
        print(
            f"open offered {point['offered_rps']:.0f} rps "
            f"({point['offered_vs_capacity']}x capacity): achieved "
            f"{point['achieved_rps']:.0f} rps, shed rate {point['shed_rate']:.2f}"
        )

    shed = run_shed_scenario(args, requests=min(requests, 400))
    print(
        f"shed scenario: {shed['shed']}/{shed['requests']} shed "
        f"(server counted {shed['server_shed_requests']})"
    )

    report = {
        "meta": {
            "mode": mode,
            "cores": os.cpu_count(),
            "python": sys.version.split()[0],
            "engine": args.engine,
            "executor": args.executor,
            "num_shards": args.shards if args.engine == "sharded" else 1,
            "users": args.users,
            "profile_size": args.profile_size,
            "catalog": args.catalog,
            "k": args.k,
            "requests_per_point": requests,
            "cache_ttl_on_s": CACHE_TTL_ON,
        },
        "closed_loop": closed_loop,
        "open_loop": open_loop,
        "shed": shed,
        "checks": {"cache_on_p50_better": check_cache_wins(closed_loop)},
    }
    validate_report(report)
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
