"""Bench F11 -- regenerate Figure 11 (widget impact on a busy client).

Paper shapes to check:

* the baseline monitor progress declines gently (~22%) from idle to
  fully stress-loaded;
* running the HyRec widget costs about as much as the display
  operation and strictly less than the baseline;
* the decentralized recommender's steady overlay traffic costs less
  per window than HyRec's compute burst (paper: "an even lower
  impact"), but it never stops, unlike HyRec.
"""

from conftest import attach_report, run_once

from repro.eval.fig11_13 import run_fig11


def test_fig11_client_interference(benchmark):
    result = run_once(benchmark, run_fig11, loads=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0))
    attach_report(benchmark, result)

    baseline = result.progress["Baseline"]
    hyrec = result.progress["HyRec operation"]
    display = result.progress["Display operation"]
    p2p = result.progress["Decentralized"]

    decline = 1.0 - baseline[-1] / baseline[0]
    assert 0.15 < decline < 0.30  # paper: ~185M -> ~145M

    for index in range(len(result.loads)):
        assert baseline[index] > p2p[index] > hyrec[index]
        # HyRec ~ display operation (within 15%).
        assert abs(hyrec[index] - display[index]) / display[index] < 0.15

    benchmark.extra_info["baseline_decline"] = round(decline, 3)
