"""Bench T2 -- regenerate Table 2 (dataset statistics).

Paper shape to check: four workloads whose user/item/rating counts
scale as in Table 2, with average profile sizes of ~106/166/143 for
MovieLens and ~13 for Digg.
"""

from conftest import attach_report, run_once

from repro.eval.table2 import run_table2


def test_table2_dataset_statistics(benchmark):
    result = run_once(benchmark, run_table2, scale=0.05, seed=0)
    attach_report(benchmark, result)

    stats = result.stats
    # Table 2's load-bearing column: average ratings per user.
    assert 90 <= stats["ML1"].avg_ratings_per_user <= 125
    assert 120 <= stats["ML2"].avg_ratings_per_user <= 185
    assert 120 <= stats["ML3"].avg_ratings_per_user <= 165
    assert 9 <= stats["Digg"].avg_ratings_per_user <= 18
    benchmark.extra_info["avg_ratings"] = {
        name: round(s.avg_ratings_per_user, 1) for name, s in stats.items()
    }
