"""Cluster benchmark: shard-count sweep + engine-parity replay.

Run directly (writes ``BENCH_cluster.json`` next to the repo root so
the perf trajectory is tracked across PRs)::

    PYTHONPATH=src python benchmarks/bench_cluster.py
    PYTHONPATH=src python benchmarks/bench_cluster.py --quick

Two measurements:

1. **Sweep** (the COB-Service replicas shape): a synthetic worst-case
   population (fixed-size profiles, randomized KNN rows so candidate
   sets sit near ``2k + k^2``) served by the sharded engine at 1/2/4/8
   shards under all three executors (serial / thread pool / worker
   processes over the serialized shard transport), driven by
   :class:`repro.sim.loadgen.ClusterLoadGenerator` -- real requests,
   wall-clock RPS.  A sequential run of the single-matrix
   ``engine="vectorized"`` path is recorded alongside as the
   no-cluster reference.  The headline check: batched multi-shard
   throughput at 8 shards on the thread-pool executor must be at least
   the sweep's single-shard throughput.  (On a single-core host the
   gain comes from window batching and per-shard cache locality --
   each shard's gather slices stay cache-resident where the unsharded
   window streams one huge arena pass; the thread pool only adds real
   parallelism where cores exist, since the kernels release the GIL.)
   The process executor is additionally compared against the thread
   executor at 8 shards: on >= 2 cores it should win (whole
   interpreters in parallel); on one core the report documents the
   IPC overhead instead (``process_vs_thread`` + ``cores`` fields).

2. **Replay**: a full ML1 trace replay through all three engines --
   equal outcomes and byte-identical wire metering are asserted, wall
   times reported.

3. **Skew** (the churn/rebalance shape): a zipf-popular user
   population writes through the sharded engine, concentrating load on
   whichever shards the hot users hash to; the
   :class:`repro.cluster.ShardRebalancer` then migrates placement
   buckets off the hottest shard and the report records the per-shard
   write spread before and after (``max_min_ratio`` uses a min floor
   of one write).  The headline check: the post-rebalance ratio must
   be below the pre-rebalance one.

4. **Recovery** (the fault-tolerance shape): a worker is SIGKILLed
   halfway through a process-executor load run; the supervisor must
   detect, re-fork, and warm-replay the shard inside the request path,
   and a full rolling restart then cycles every worker under the same
   load.  Reports detection-to-recovery latency and per-worker restart
   cost; asserts zero dropped requests and bit-for-bit parity with an
   unsharded run of the identical request sequence.  ``--recovery-only``
   re-runs just this scenario and merges it into the existing report.

5. **Autoscale** (the elasticity shape): a zipf write ramp drives the
   :class:`repro.cluster.ShardRebalancer`'s watermark autoscaler --
   each control pass adds a shard and rebalances while measured
   request waves keep serving; a near-idle cooldown shrinks the fleet
   back.  Reports per-phase shard count, write spread, and RPS;
   asserts the full grow/shrink trajectory, a non-worsening spread
   after scale-out, zero dropped requests, and bit-for-bit parity
   with an unsharded run of the identical sequence.
   ``--autoscale-smoke`` re-runs just this scenario and merges it
   into the existing report (the CI elasticity smoke).

6. **Memory** (the million-user shape): zipf-distributed synthetic
   populations (:mod:`repro.datasets.synthetic`) stream through the
   constant-memory loader into the engine -- 100k users with and
   without the bounded-memory policy (row eviction + int32
   narrowing), and 1M users under the policy in the full run.  Each
   case runs in a forked child so ``ru_maxrss`` is a per-case peak;
   the report records peak RSS, sustained write throughput, serve-
   wave RPS, and the engine's own arena accounting
   (``memory_stats``).  ``--memory-smoke`` runs the 100k pair only,
   asserts the policy run's peak RSS stays under a fixed ceiling,
   and merges the section into the existing report (the CI
   memory-scale smoke).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import pathlib
import resource
import signal
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import numpy as np

from repro.core.config import HyRecConfig
from repro.core.system import HyRecSystem
from repro.datasets import load_dataset
from repro.datasets.synthetic import StreamingLoader, SyntheticSpec
from repro.sim.loadgen import ClusterLoadGenerator
from repro.sim.randomness import derive_rng

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

SHARD_SWEEP = (1, 2, 4, 8)
EXECUTORS = ("serial", "thread", "process")


def build_system(
    engine: str,
    num_users: int,
    profile_size: int,
    catalog: int,
    k: int,
    batch_window: int,
    num_shards: int = 1,
    executor: str = "serial",
    seed: int = 0,
) -> HyRecSystem:
    """A system preloaded with fixed-size profiles and random KNN rows."""
    rng = derive_rng(seed, "cluster-population")
    system = HyRecSystem(
        HyRecConfig(
            k=k,
            r=10,
            compress=False,  # measure engines, not shared gzip cost
            engine=engine,
            num_shards=num_shards,
            executor=executor,
            batch_window=batch_window,
        ),
        seed=seed,
    )
    for user in range(num_users):
        for item in rng.sample(range(catalog), profile_size):
            value = 1.0 if rng.random() < 0.8 else 0.0
            system.record_rating(user, item, value, timestamp=0.0)
    users = list(range(num_users))
    for user in users:
        neighbors = [n for n in rng.sample(users, k + 1) if n != user][:k]
        system.server.knn_table.update(user, neighbors)
    return system


def bench_sweep(
    num_users: int,
    profile_size: int,
    catalog: int,
    k: int,
    requests: int,
    batch_window: int,
    rounds: int = 3,
    seed: int = 0,
) -> dict:
    """RPS per (shard count, executor), plus the vectorized reference.

    All configurations are measured in interleaved rounds and each
    keeps its best round: shared boxes drift (thermal throttling,
    noisy neighbors), and a sequential sweep would systematically
    punish whichever configuration runs last.
    """
    users = list(range(num_users))

    configs: list[tuple[str, HyRecSystem, int]] = []
    vectorized = build_system(
        "vectorized", num_users, profile_size, catalog, k, batch_window,
        seed=seed,
    )
    configs.append(("vectorized", vectorized, 1))
    for num_shards in SHARD_SWEEP:
        for executor in EXECUTORS:
            system = build_system(
                "sharded", num_users, profile_size, catalog, k, batch_window,
                num_shards=num_shards, executor=executor, seed=seed,
            )
            configs.append((f"x{num_shards}/{executor}", system, batch_window))

    generators = {
        name: ClusterLoadGenerator(system, users)
        for name, system, _ in configs
    }
    best: dict[str, dict] = {}
    for name, system, concurrency in configs:  # warm caches and pools
        generators[name].run(requests=min(64, requests), concurrency=concurrency)
    for _ in range(rounds):
        for name, system, concurrency in configs:
            result = generators[name].run(
                requests=requests, concurrency=concurrency
            )
            entry = {
                "rps": round(result.throughput_rps, 1),
                "mean_ms": round(result.mean_response_ms, 3),
                "p95_ms": round(result.p95_response_s * 1e3, 3),
            }
            if name not in best or entry["rps"] > best[name]["rps"]:
                best[name] = entry

    baseline = best["vectorized"]
    print(
        f"vectorized (sequential)     : {baseline['rps']:8.1f} rps  "
        f"mean {baseline['mean_ms']:7.3f}ms"
    )
    rows = []
    for name, system, _ in configs:
        if name == "vectorized":
            continue
        num_shards, executor = name[1:].split("/")
        entry = dict(best[name])
        entry.update(
            {
                "num_shards": int(num_shards),
                "executor": executor,
                "batch_window": batch_window,
                "speedup_vs_vectorized": round(
                    entry["rps"] / baseline["rps"], 3
                ),
            }
        )
        stats = system.server.stats.shards
        entry["max_shard_users"] = max(s.users for s in stats)
        entry["min_shard_users"] = min(s.users for s in stats)
        rows.append(entry)
        print(
            f"sharded x{num_shards} ({executor:6s}, w={batch_window:3d})"
            f" : {entry['rps']:8.1f} rps  "
            f"mean {entry['mean_ms']:7.3f}ms  "
            f"x{entry['speedup_vs_vectorized']:.2f} vs vectorized"
        )
        system.close()

    def rps_of(num_shards: int, executor: str) -> float:
        return next(
            row["rps"]
            for row in rows
            if row["num_shards"] == num_shards and row["executor"] == executor
        )

    # The headline bar keeps its PR-2 definition (in-process executors
    # only) so the trajectory stays comparable across benchmark runs.
    single_shard = min(rps_of(1, executor) for executor in ("serial", "thread"))
    eight_thread = rps_of(8, "thread")
    eight_process = rps_of(8, "process")
    meets_target = bool(eight_thread >= single_shard)
    print(
        f"8-shard thread-pool {eight_thread:.1f} rps vs single-shard "
        f"{single_shard:.1f} rps -> "
        f"{'scales' if meets_target else 'DOES NOT scale'} "
        f"(x{eight_thread / single_shard:.2f})"
    )
    cores = os.cpu_count() or 1
    process_vs_thread = round(eight_process / eight_thread, 3)
    if cores >= 2:
        process_note = (
            f"{cores} cores: worker processes run whole interpreters "
            f"in parallel (x{process_vs_thread:.2f} vs thread pool at "
            "8 shards)"
        )
    else:
        process_note = (
            "single-core host: no parallelism to win, so the "
            f"x{process_vs_thread:.2f} vs the thread pool at 8 shards "
            "is pure IPC overhead (frame serialization + context "
            "switches); expect the process executor to pull ahead "
            "once cores >= 2"
        )
    print(
        f"8-shard process {eight_process:.1f} rps vs thread "
        f"{eight_thread:.1f} rps (x{process_vs_thread:.2f}, "
        f"{cores} core(s))"
    )
    return {
        "population": {
            "users": num_users,
            "profile_size": profile_size,
            "catalog": catalog,
            "k": k,
            "requests": requests,
        },
        "cores": cores,
        "vectorized_sequential": baseline,
        "sweep": rows,
        "single_shard_rps": single_shard,
        "eight_shard_thread_rps": eight_thread,
        "eight_shard_process_rps": eight_process,
        "process_vs_thread": process_vs_thread,
        "process_note": process_note,
        "meets_target": meets_target,
    }


def bench_replay(scale: float, num_shards: int, seed: int = 0) -> dict:
    """Replay ML1 through all engines; verify parity, report times."""
    trace = load_dataset("ML1", scale=scale, seed=seed)
    timings: dict[str, float] = {}
    wire_bytes: dict[str, int] = {}
    digests: dict[str, int] = {}
    for engine in ("python", "vectorized", "sharded"):
        system = HyRecSystem(
            HyRecConfig(k=10, engine=engine, num_shards=num_shards),
            seed=seed,
        )
        digest: list = []
        start = time.perf_counter()
        system.replay(
            trace, on_request=lambda o: digest.append(tuple(o.recommendations))
        )
        timings[engine] = time.perf_counter() - start
        wire_bytes[engine] = system.server.meter.total_wire_bytes
        digests[engine] = hash(tuple(digest))
        system.close()

    parity = (
        len(set(digests.values())) == 1 and len(set(wire_bytes.values())) == 1
    )
    entry = {
        "dataset": "ML1",
        "scale": scale,
        "requests": len(trace),
        "num_shards": num_shards,
        "python_s": round(timings["python"], 3),
        "vectorized_s": round(timings["vectorized"], 3),
        "sharded_s": round(timings["sharded"], 3),
        "parity_identical": parity,
    }
    print(
        f"replay ML1@{scale} (x{num_shards} shards): "
        f"python {entry['python_s']:7.2f}s  "
        f"vectorized {entry['vectorized_s']:7.2f}s  "
        f"sharded {entry['sharded_s']:7.2f}s  "
        f"parity={parity}"
    )
    if not parity:
        raise SystemExit("engine parity violated during replay")
    return entry


def bench_skew(
    num_users: int,
    writes: int,
    num_shards: int,
    catalog: int = 2000,
    zipf_a: float = 1.1,
    seed: int = 0,
) -> dict:
    """Zipf-skewed write load: per-shard spread pre/post rebalance.

    Users draw writes with popularity ``1 / rank^a`` -- the head-heavy
    shape item-serving systems face -- so a handful of hot users
    concentrate write load on whichever shards their placement buckets
    hash to.  The rebalancer then migrates buckets until the spread is
    inside threshold or no single bucket move improves it (one
    deliberately *unsplittable* hot bucket can cap how far the ratio
    falls -- the report records whatever balance bucket moves can buy).
    """
    rng = derive_rng(seed, "cluster-skew")
    system = HyRecSystem(
        HyRecConfig(
            k=10,
            compress=False,
            engine="sharded",
            num_shards=num_shards,
            rebalance_threshold=1.2,
            rebalance_max_moves=max(4, 8 * num_shards),
        ),
        seed=seed,
    )
    weights = [1.0 / (rank + 1) ** zipf_a for rank in range(num_users)]
    for user in rng.choices(range(num_users), weights=weights, k=writes):
        system.record_rating(user, rng.randrange(catalog), 1.0, timestamp=0.0)

    rebalancer = system.server.rebalancer
    assert rebalancer is not None

    def spread(loads) -> dict:
        return {
            "per_shard_writes": [int(load) for load in loads],
            "max": int(loads.max()),
            "min": int(loads.min()),
            "max_min_ratio": round(
                float(loads.max()) / float(max(int(loads.min()), 1)), 3
            ),
        }

    pre = spread(rebalancer.shard_loads())
    moves = rebalancer.rebalance()
    post = spread(rebalancer.shard_loads())
    system.close()

    reduced = post["max_min_ratio"] < pre["max_min_ratio"]
    print(
        f"skew x{num_shards} (zipf a={zipf_a}, {writes} writes): "
        f"pre ratio {pre['max_min_ratio']:.2f} -> post "
        f"{post['max_min_ratio']:.2f} after {len(moves)} bucket moves "
        f"({'reduced' if reduced else 'NOT reduced'})"
    )
    if not reduced:
        raise SystemExit("rebalance failed to reduce the write spread")
    return {
        "population": {
            "users": num_users,
            "writes": writes,
            "catalog": catalog,
            "zipf_a": zipf_a,
        },
        "num_shards": num_shards,
        "pre": pre,
        "post": post,
        "bucket_moves": [
            {
                "bucket": move.bucket,
                "source": move.source,
                "target": move.target,
                "writes": move.writes,
                "version": move.version,
            }
            for move in moves
        ],
        "reduced": reduced,
    }


def bench_recovery(
    num_users: int,
    profile_size: int,
    catalog: int,
    k: int,
    requests: int,
    batch_window: int,
    num_shards: int = 4,
    seed: int = 0,
) -> dict:
    """Kill a worker mid-run and measure detection-to-recovery cost.

    The fault-tolerance shape: the same population as the sweep served
    by the process executor, except one worker is SIGKILLed halfway
    through the load run and the supervisor must notice (socket EOF on
    the next exchange), re-fork, and warm-replay the shard from the
    coordinator-side replay log -- all inside the request path.  After
    the faulted run a full :meth:`rolling_restart` cycles every worker
    under the same live load.  The headline checks: zero dropped
    requests through both events, and bit-for-bit parity (KNN table +
    wire metering) with an unsharded vectorized run of the identical
    request sequence.
    """
    system = build_system(
        "sharded", num_users, profile_size, catalog, k, batch_window,
        num_shards=num_shards, executor="process", seed=seed,
    )
    reference = build_system(
        "vectorized", num_users, profile_size, catalog, k, batch_window,
        seed=seed,
    )
    users = list(range(num_users))
    loadgen = ClusterLoadGenerator(system, users)
    reference_loadgen = ClusterLoadGenerator(reference, users)
    executor = system.server.cluster.executor
    half = max(batch_window, requests // 2)

    before = loadgen.run(requests=half, concurrency=batch_window)
    victim = num_shards // 2
    os.kill(executor._procs[victim].pid, signal.SIGKILL)
    killed_at = time.perf_counter()
    after = loadgen.run(requests=half, concurrency=batch_window)
    first_wave_after_kill_s = time.perf_counter() - killed_at

    restart_start = time.perf_counter()
    cycled = system.server.cluster.rolling_restart()
    rolling_restart_s = time.perf_counter() - restart_start
    final = loadgen.run(requests=half, concurrency=batch_window)

    reference_loadgen.run(requests=3 * half, concurrency=batch_window)
    stats = system.server.stats
    supervisor = executor.supervisor
    parity = system.server.knn_table.as_dict() == (
        reference.server.knn_table.as_dict()
    ) and all(
        system.server.meter.reading(channel)
        == reference.server.meter.reading(channel)
        for channel in ("server->client", "client->server")
    )
    entry = {
        "population": {
            "users": num_users,
            "profile_size": profile_size,
            "catalog": catalog,
            "k": k,
            "requests": 3 * half,
        },
        "num_shards": num_shards,
        "kill": {
            "victim_shard": victim,
            "recoveries": supervisor.recoveries,
            "recovery_ms": [
                round(seconds * 1e3, 3)
                for seconds in supervisor.recovery_times
            ],
            "first_wave_after_kill_ms": round(
                first_wave_after_kill_s * 1e3, 3
            ),
            "rps_before_kill": round(before.throughput_rps, 1),
            "rps_after_kill": round(after.throughput_rps, 1),
        },
        "rolling_restart": {
            "workers_cycled": cycled,
            "total_s": round(rolling_restart_s, 3),
            "per_worker_ms": round(rolling_restart_s / cycled * 1e3, 3),
            "rps_after_restart": round(final.throughput_rps, 1),
            "restarts_per_shard": [s.restarts for s in stats.shards],
        },
        "dropped_requests": stats.dropped_requests,
        "all_workers_alive": all(s.alive for s in stats.shards),
        "parity_identical": parity,
    }
    system.close()
    reference.close()
    recovery_ms = entry["kill"]["recovery_ms"]
    print(
        f"recovery x{num_shards} (kill shard {victim}): "
        f"{supervisor.recoveries} recovery in "
        f"{recovery_ms[0] if recovery_ms else float('nan'):.1f}ms, "
        f"rolling restart {cycled} workers in "
        f"{entry['rolling_restart']['total_s']:.2f}s, "
        f"dropped={stats.dropped_requests}, parity={parity}"
    )
    if supervisor.recoveries < 1:
        raise SystemExit("the killed worker was never recovered")
    if stats.dropped_requests != 0:
        raise SystemExit("recovery dropped requests")
    if not parity:
        raise SystemExit("recovery broke engine parity")
    return entry


def bench_obs_overhead(
    scale: float, num_shards: int = 8, rounds: int = 6, seed: int = 0
) -> dict:
    """Replay overhead of the default-on metrics registry (PR 7 gate).

    The same ML1 replay on the 8-shard engine, run with
    ``metrics_enabled=True`` and ``False`` in interleaved rounds; the
    observability contract is that the registry's hot-path cost --
    request latency histogram, batch/shard counters -- stays within a
    few percent of the bare engine.  Tracing stays off in both runs:
    it is a debugging tool, not part of the steady-state overhead
    budget.  Fails the run when the measured overhead exceeds 3%.

    Noise discipline: single replays on a shared host swing far more
    than 3%, so each side keeps its best (minimum) round -- scheduling
    noise only ever adds time -- over enough rounds for the minima to
    converge, the on/off order alternates every round so neither side
    systematically runs first, and one untimed warmup replay absorbs
    the cold-start (import, page-cache, fork) cost.
    """
    trace = load_dataset("ML1", scale=scale, seed=seed)

    def timed_replay(enabled: bool) -> float:
        system = HyRecSystem(
            HyRecConfig(
                k=10,
                engine="sharded",
                num_shards=num_shards,
                metrics_enabled=enabled,
            ),
            seed=seed,
        )
        start = time.perf_counter()
        system.replay(trace)
        elapsed = time.perf_counter() - start
        system.close()
        return elapsed

    timed_replay(True)  # untimed warmup
    best: dict[str, float] = {}
    sides = (("metrics_on", True), ("metrics_off", False))
    for round_index in range(rounds):
        order = sides if round_index % 2 == 0 else sides[::-1]
        for label, enabled in order:
            elapsed = timed_replay(enabled)
            if label not in best or elapsed < best[label]:
                best[label] = elapsed

    overhead_pct = round(
        (best["metrics_on"] - best["metrics_off"])
        / best["metrics_off"]
        * 100,
        2,
    )
    within_budget = overhead_pct <= 3.0
    print(
        f"obs overhead x{num_shards} (ML1@{scale}, best of {rounds}): "
        f"metrics on {best['metrics_on']:.3f}s vs off "
        f"{best['metrics_off']:.3f}s -> {overhead_pct:+.2f}% "
        f"({'within' if within_budget else 'EXCEEDS'} the 3% budget)"
    )
    if not within_budget:
        raise SystemExit(
            f"metrics overhead {overhead_pct}% exceeds the 3% budget"
        )
    return {
        "dataset": "ML1",
        "scale": scale,
        "requests": len(trace),
        "num_shards": num_shards,
        "rounds": rounds,
        "metrics_on_s": round(best["metrics_on"], 3),
        "metrics_off_s": round(best["metrics_off"], 3),
        "overhead_pct": overhead_pct,
        "within_budget": within_budget,
    }


def bench_autoscale(
    num_users: int,
    ramp_writes: int,
    catalog: int,
    requests: int,
    batch_window: int,
    min_shards: int = 2,
    max_shards: int = 4,
    zipf_a: float = 1.1,
    seed: int = 0,
) -> dict:
    """Load ramp through the watermark autoscaler: grow, serve, shrink.

    The elasticity shape: a process-executor cluster starts at
    ``min_shards`` and a zipf-skewed write ramp pushes the mean
    writes/shard past the autoscaler's high-water mark; each control
    pass (driven explicitly here so the phases are deterministic --
    the production path runs the same ``run_once`` on a timer) adds
    one shard and rebalances, with a measured request wave served
    between passes.  After the fleet reaches ``max_shards`` one more
    hot chunk lands and a final rebalance must not worsen the spread;
    a near-idle cooldown then walks the fleet back down to
    ``min_shards``.  Headline checks: the fleet actually grew to
    ``max_shards`` and shrank back, the post-scale-out rebalance kept
    the max/min write spread from growing, zero dropped requests, and
    bit-for-bit parity (KNN table + wire metering) with an unsharded
    vectorized run of the identical write/request sequence.  Per-phase
    RPS and spread are recorded so the report shows both recovering
    after scale-out.
    """
    config = HyRecConfig(
        k=10,
        r=10,
        compress=False,
        engine="sharded",
        num_shards=min_shards,
        executor="process",
        batch_window=batch_window,
        rebalance_threshold=1.3,
        rebalance_max_moves=4 * max_shards,
        autoscale_min_shards=min_shards,
        autoscale_max_shards=max_shards,
        autoscale_high_water=ramp_writes / (2.0 * max_shards),
        autoscale_low_water=20.0,
    )
    system = HyRecSystem(config, seed=seed)
    reference = HyRecSystem(
        HyRecConfig(
            k=10, r=10, compress=False, engine="vectorized",
            batch_window=batch_window,
        ),
        seed=seed,
    )
    rng = derive_rng(seed, "cluster-autoscale")
    users = list(range(num_users))
    for user in users:  # identical population on both systems
        for item in rng.sample(range(catalog), 12):
            value = 1.0 if rng.random() < 0.8 else 0.0
            system.record_rating(user, item, value, timestamp=0.0)
            reference.record_rating(user, item, value, timestamp=0.0)
    for user in users:
        neighbors = [n for n in rng.sample(users, 11) if n != user][:10]
        system.server.knn_table.update(user, neighbors)
        reference.server.knn_table.update(user, neighbors)

    cluster = system.server.cluster
    rebalancer = system.server.rebalancer
    assert cluster is not None and rebalancer is not None
    loadgen = ClusterLoadGenerator(system, users)
    reference_loadgen = ClusterLoadGenerator(reference, users)
    weights = [1.0 / (rank + 1) ** zipf_a for rank in range(num_users)]

    def write_chunk(count: int) -> None:
        for user in rng.choices(range(num_users), weights=weights, k=count):
            item = rng.randrange(catalog)
            system.record_rating(user, item, 1.0, timestamp=0.0)
            reference.record_rating(user, item, 1.0, timestamp=0.0)

    def ratio(loads) -> float:
        return round(
            float(loads.max()) / float(max(int(loads.min()), 1)), 3
        )

    phases: list[dict] = []

    def measure(phase: str) -> dict:
        result = loadgen.run(requests=requests, concurrency=batch_window)
        reference_loadgen.run(requests=requests, concurrency=batch_window)
        loads = rebalancer.shard_loads()
        entry = {
            "phase": phase,
            "num_shards": cluster.num_shards,
            "rps": round(result.throughput_rps, 1),
            "per_shard_writes": [int(load) for load in loads],
            "max_min_ratio": ratio(loads),
        }
        phases.append(entry)
        return entry

    measure("baseline")
    passes = 0
    while cluster.num_shards < max_shards and passes < 2 * max_shards:
        write_chunk(ramp_writes)
        rebalancer.run_once()  # the timer tick, driven deterministically
        passes += 1
        measure(f"ramp-{passes}")

    write_chunk(ramp_writes)  # one more hot chunk at full size
    spread_pre = ratio(rebalancer.shard_loads())
    moves = rebalancer.rebalance()
    spread_post = ratio(rebalancer.shard_loads())
    after_scaleout = measure("after-scaleout")

    cooldown = 0
    while cluster.num_shards > min_shards and cooldown < 2 * max_shards:
        write_chunk(10)  # near idle: mean writes/shard under low water
        rebalancer.run_once()
        cooldown += 1
        measure(f"cooldown-{cooldown}")

    stats = system.server.stats
    parity = system.server.knn_table.as_dict() == (
        reference.server.knn_table.as_dict()
    ) and all(
        system.server.meter.reading(channel)
        == reference.server.meter.reading(channel)
        for channel in ("server->client", "client->server")
    )
    grows = [a for a in rebalancer.scale_actions if a[0] == "grow"]
    shrinks = [a for a in rebalancer.scale_actions if a[0] == "shrink"]
    rps_recovered = after_scaleout["rps"] >= 0.5 * phases[0]["rps"]
    entry = {
        "population": {
            "users": num_users,
            "catalog": catalog,
            "ramp_writes": ramp_writes,
            "zipf_a": zipf_a,
            "requests_per_wave": requests,
        },
        "min_shards": min_shards,
        "max_shards": max_shards,
        "high_water": config.autoscale_high_water,
        "low_water": config.autoscale_low_water,
        "phases": phases,
        "scale_actions": [list(action) for action in rebalancer.scale_actions],
        "shards_added": stats.shards_added,
        "shards_removed": stats.shards_removed,
        "spread_after_scaleout": {
            "pre_rebalance": spread_pre,
            "post_rebalance": spread_post,
            "bucket_moves": len(moves),
        },
        "rps_baseline": phases[0]["rps"],
        "rps_after_scaleout": after_scaleout["rps"],
        "rps_recovered": bool(rps_recovered),
        "dropped_requests": stats.dropped_requests,
        "parity_identical": parity,
    }
    system.close()
    reference.close()
    print(
        f"autoscale {min_shards}->{max_shards} shards: "
        f"{len(grows)} grows / {len(shrinks)} shrinks, spread "
        f"{spread_pre:.2f} -> {spread_post:.2f} after {len(moves)} moves, "
        f"rps {entry['rps_baseline']:.1f} -> "
        f"{entry['rps_after_scaleout']:.1f} after scale-out, "
        f"dropped={stats.dropped_requests}, parity={parity}"
    )
    if len(grows) != max_shards - min_shards:
        raise SystemExit(
            f"autoscaler grew {len(grows)} times, expected "
            f"{max_shards - min_shards}"
        )
    if not shrinks or entry["phases"][-1]["num_shards"] != min_shards:
        raise SystemExit("autoscaler failed to shrink back to the floor")
    if spread_post > spread_pre:
        raise SystemExit("post-scale-out rebalance worsened the spread")
    if stats.dropped_requests != 0:
        raise SystemExit("autoscale run dropped requests")
    if not parity:
        raise SystemExit("autoscale run broke engine parity")
    return entry


def _memory_case(
    name: str,
    num_users: int,
    catalog: int,
    total_writes: int,
    engine: str = "vectorized",
    num_shards: int = 1,
    evict_max_rows: int = 0,
    narrow: bool = False,
    requests: int = 256,
    batch_window: int = 32,
    chunk_size: int = 65_536,
    seed: int = 0,
) -> dict:
    """One memory/write-path measurement (meant to run in a fork).

    Streams a zipf population into a fresh system through the
    constant-memory loader, then serves measured request waves against
    provably-active users, and reads back the engine's own arena
    accounting.  Peak RSS is stamped on by the fork wrapper.
    """
    spec = SyntheticSpec(
        num_users=num_users,
        catalog=catalog,
        total_writes=total_writes,
        user_exponent=1.05,
        seed=seed,
    )
    config = HyRecConfig(
        k=10,
        r=10,
        compress=False,
        engine=engine,
        num_shards=num_shards,
        batch_window=batch_window,
        evict_max_rows=evict_max_rows,
        narrow_dtypes=narrow,
    )
    system = HyRecSystem(config, seed=seed)
    loader = StreamingLoader(spec, chunk_size=chunk_size)

    start = time.perf_counter()
    written = loader.load_into(system)
    write_s = time.perf_counter() - start

    # Serve against users the stream's head definitely touched (the
    # zipf tail of a million-user population is mostly never seen).
    head_users = np.unique(next(iter(loader.chunks()))[0])[:2048].tolist()
    loadgen = ClusterLoadGenerator(system, head_users)
    result = loadgen.run(requests=requests, concurrency=batch_window)

    matrix = system.server.liked_matrix
    if matrix is None and system.server.cluster is not None:
        matrix = system.server.cluster.matrix  # in-process sharding only
    memory = matrix.memory_stats() if matrix is not None else None
    entry = {
        "name": name,
        "population": {
            "users": num_users,
            "catalog": catalog,
            "total_writes": total_writes,
            "user_exponent": spec.user_exponent,
        },
        "engine": engine,
        "num_shards": num_shards,
        "evict_max_rows": evict_max_rows,
        "narrow_dtypes": narrow,
        "users_seen": len(system.server.profiles),
        "write_s": round(write_s, 3),
        "writes_per_s": round(written / write_s, 1),
        "serve_rps": round(result.throughput_rps, 1),
        "serve_p95_ms": round(result.p95_response_s * 1e3, 3),
        "memory_stats": memory,
    }
    system.close()
    return entry


def _memory_case_child(kwargs: dict, conn) -> None:
    try:
        entry = _memory_case(**kwargs)
        entry["peak_rss_mb"] = round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
        )
        conn.send(entry)
    except BaseException as exc:  # ship the failure to the parent
        conn.send({"name": kwargs.get("name"), "error": repr(exc)})
    finally:
        conn.close()


def _run_memory_case(**kwargs) -> dict:
    """Fork one measurement so ``ru_maxrss`` is a per-case peak."""
    receiver, sender = multiprocessing.Pipe(duplex=False)
    proc = multiprocessing.get_context("fork").Process(
        target=_memory_case_child, args=(kwargs, sender)
    )
    proc.start()
    sender.close()
    entry = receiver.recv()
    proc.join()
    receiver.close()
    if "error" in entry:
        raise SystemExit(f"memory case {entry['name']} failed: {entry['error']}")
    print(
        f"memory {entry['name']:<22s}: {entry['users_seen']:>9,} users seen, "
        f"{entry['writes_per_s']:>9,.0f} writes/s, "
        f"{entry['serve_rps']:>7.1f} rps, "
        f"peak RSS {entry['peak_rss_mb']:>8.1f} MB"
    )
    return entry


#: Peak-RSS ceiling (MB) for the 100k-user policy case in the CI
#: smoke.  Measured ~330 MB on the reference box (the Profile Table
#: dominates; the arena itself is a few MB); the ceiling leaves ~2x
#: headroom for allocator and platform variance without letting a
#: quadratic write path or an eviction regression slip through.
MEMORY_SMOKE_RSS_CEILING_MB = 640.0


def bench_memory(full: bool, seed: int = 0) -> dict:
    """Peak RSS + write throughput at 100k (and, full mode, 1M) users.

    The 100k pair isolates what the bounded-memory policy buys at
    constant workload; the 1M case is the tentpole standup -- the
    population the paper's front-end claims to face, streamed through
    the loader and served, with peak RSS as the documented budget.
    """
    cases = [
        dict(
            name="100k-baseline",
            num_users=100_000,
            catalog=50_000,
            total_writes=1_000_000,
            seed=seed,
        ),
        dict(
            name="100k-evict-narrow",
            num_users=100_000,
            catalog=50_000,
            total_writes=1_000_000,
            evict_max_rows=20_000,
            narrow=True,
            seed=seed,
        ),
    ]
    if full:
        cases.append(
            dict(
                name="1M-evict-narrow",
                num_users=1_000_000,
                catalog=200_000,
                total_writes=3_000_000,
                evict_max_rows=100_000,
                narrow=True,
                seed=seed,
            )
        )
    entries = [_run_memory_case(**case) for case in cases]
    baseline, policied = entries[0], entries[1]
    return {
        "rss_ceiling_mb": MEMORY_SMOKE_RSS_CEILING_MB,
        "policy_rss_saving_mb": round(
            baseline["peak_rss_mb"] - policied["peak_rss_mb"], 1
        ),
        "cases": entries,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller population + replay"
    )
    parser.add_argument(
        "--scale", type=float, default=0.1, help="ML1 replay scale"
    )
    parser.add_argument(
        "--recovery-only",
        action="store_true",
        help="run only the kill/recovery scenario and merge it into an "
        "existing report (the CI fault-tolerance smoke)",
    )
    parser.add_argument(
        "--autoscale-smoke",
        action="store_true",
        help="run only the elastic grow/shrink scenario and merge it into "
        "an existing report (the CI elasticity smoke)",
    )
    parser.add_argument(
        "--obs-overhead",
        action="store_true",
        help="run only the metrics-on vs metrics-off overhead gate and "
        "merge it into an existing report (the CI observability smoke)",
    )
    parser.add_argument(
        "--memory-smoke",
        action="store_true",
        help="run only the 100k-user memory pair, assert the policy "
        "run's peak RSS stays under the ceiling, and merge it into an "
        "existing report (the CI memory-scale smoke)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_cluster.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    if args.memory_smoke:
        memory = bench_memory(full=False)
        policied = memory["cases"][1]
        if policied["peak_rss_mb"] > MEMORY_SMOKE_RSS_CEILING_MB:
            raise SystemExit(
                f"memory smoke: peak RSS {policied['peak_rss_mb']} MB "
                f"exceeds the {MEMORY_SMOKE_RSS_CEILING_MB} MB ceiling"
            )
        report = (
            json.loads(args.output.read_text())
            if args.output.exists()
            else {}
        )
        report["memory"] = memory
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"updated memory section of {args.output}")
        return 0

    if args.obs_overhead:
        obs = bench_obs_overhead(
            scale=min(args.scale, 0.03) if args.quick else args.scale
        )
        report = (
            json.loads(args.output.read_text())
            if args.output.exists()
            else {}
        )
        report["obs_overhead"] = obs
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"updated obs_overhead section of {args.output}")
        return 0

    if args.autoscale_smoke:
        autoscale = (
            bench_autoscale(
                num_users=200, ramp_writes=1500, catalog=1500,
                requests=96, batch_window=16, max_shards=4,
            )
            if args.quick
            else bench_autoscale(
                num_users=400, ramp_writes=4000, catalog=2500,
                requests=256, batch_window=32, max_shards=8,
            )
        )
        report = (
            json.loads(args.output.read_text())
            if args.output.exists()
            else {}
        )
        report["autoscale"] = autoscale
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"updated autoscale section of {args.output}")
        return 0

    if args.quick:
        recovery = bench_recovery(
            num_users=200, profile_size=80, catalog=1500, k=10,
            requests=128, batch_window=16,
        )
    else:
        recovery = bench_recovery(
            num_users=400, profile_size=150, catalog=2500, k=20,
            requests=384, batch_window=32,
        )

    if args.recovery_only:
        # Merge into the tracked report: the sweep/replay/skew sections
        # from the last full run stay comparable across PRs.
        report = (
            json.loads(args.output.read_text())
            if args.output.exists()
            else {}
        )
        report["recovery"] = recovery
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"updated recovery section of {args.output}")
        return 0

    if args.quick:
        sweep = bench_sweep(
            num_users=300, profile_size=120, catalog=2000, k=20,
            requests=192, batch_window=32,
        )
        replay = bench_replay(scale=min(args.scale, 0.03), num_shards=4)
        skew = bench_skew(num_users=200, writes=2000, num_shards=8)
        autoscale = bench_autoscale(
            num_users=200, ramp_writes=1500, catalog=1500,
            requests=96, batch_window=16, max_shards=4,
        )
        obs = bench_obs_overhead(scale=min(args.scale, 0.03))
        memory = bench_memory(full=False)
    else:
        sweep = bench_sweep(
            num_users=800, profile_size=200, catalog=2500, k=20,
            requests=512, batch_window=32,
        )
        replay = bench_replay(scale=args.scale, num_shards=4)
        skew = bench_skew(num_users=400, writes=8000, num_shards=8)
        autoscale = bench_autoscale(
            num_users=400, ramp_writes=4000, catalog=2500,
            requests=256, batch_window=32, max_shards=8,
        )
        obs = bench_obs_overhead(scale=args.scale)
        memory = bench_memory(full=True)

    report = {
        "sweep": sweep,
        "replay": [replay],
        "skew": skew,
        "recovery": recovery,
        "autoscale": autoscale,
        "obs_overhead": obs,
        "memory": memory,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
