"""Bench F6 -- regenerate Figure 6 (recommendation quality).

Paper shapes to check:

* quality grows with the number of recommendations for every system;
* Online-Ideal is the best system (the upper bound);
* HyRec beats Offline-Ideal p=24h (the paper's headline: up to 12%
  better) and is competitive with p=1h;
* HyRec lands within a modest gap of Online-Ideal (paper: 13%).
"""

from conftest import attach_report, run_once

from repro.eval.fig6 import run_fig6


def test_fig6_recommendation_quality(benchmark):
    result = run_once(benchmark, run_fig6, scale=0.15, seed=0)
    attach_report(benchmark, result)

    for name, quality in result.results.items():
        counts = [quality.hits_at[n] for n in range(1, result.n_max + 1)]
        assert counts == sorted(counts), name

    hyrec = result.quality_at("HyRec", 10)
    offline_24h = result.quality_at("Offline Ideal p=24h", 10)
    offline_1h = result.quality_at("Offline Ideal p=1h", 10)
    online = result.quality_at("Online Ideal", 10)

    assert online >= max(hyrec, offline_24h, offline_1h) * 0.95
    # Paper: HyRec beats offline p=24h by up to 12%.  At bench scale
    # the sampled KNN's approximation gap offsets part of the
    # staleness advantage, so assert parity within noise; the gap
    # closes at larger --scale runs (see EXPERIMENTS.md).
    assert hyrec >= offline_24h * 0.90
    assert hyrec >= online * 0.80  # paper: 13% below the bound

    benchmark.extra_info["quality_at_10"] = {
        "hyrec": hyrec,
        "offline_24h": offline_24h,
        "offline_1h": offline_1h,
        "online_ideal": online,
    }
