"""Bench F10 -- regenerate Figure 10 (message size vs profile size).

Paper shapes to check:

* raw JSON size grows ~linearly with profile size;
* gzip removes around 71% of the bytes at large profiles;
* compressed sizes stay far below the raw ones everywhere.

Doubles as ablation A4 (gzip on/off): both curves come from the same
jobs.
"""

from conftest import attach_report, run_once

from repro.eval.fig10 import run_fig10


def test_fig10_message_sizes(benchmark):
    result = run_once(
        benchmark,
        run_fig10,
        profile_sizes=(10, 50, 100, 200, 350, 500),
        num_users=300,
        jobs_per_point=15,
        seed=0,
    )
    attach_report(benchmark, result)

    sizes = result.profile_sizes
    # Approximate linearity: bytes per profile entry stays flat.
    per_entry = [result.raw_bytes[ps] / ps for ps in sizes[1:]]
    assert max(per_entry) / min(per_entry) < 1.6

    for ps in sizes:
        assert result.gzip_bytes[ps] < result.raw_bytes[ps]
    ratio_500 = result.compression_ratio(500)
    assert 0.6 < ratio_500 < 0.85  # paper: ~71%
    benchmark.extra_info["compression_at_500"] = round(ratio_500, 3)
    benchmark.extra_info["gzip_kb_at_500"] = round(
        result.gzip_bytes[500] / 1000, 1
    )
