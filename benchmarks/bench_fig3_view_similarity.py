"""Bench F3 -- regenerate Figure 3 (view similarity over time, ML1).

Paper shapes to check:

* every system's average view similarity grows over the trace;
* the ideal KNN dominates all approximations;
* HyRec k=10 ends within a modest gap of the ideal (paper: 20%; the
  bound here is looser because the benched scale is small);
* the IR=7 variant (requests at least weekly) ends at least as high
  as plain k=10 (extra iterations can only help).
"""

from conftest import attach_report, run_once

from repro.eval.fig3_fig4 import run_fig3


def test_fig3_view_similarity_over_time(benchmark):
    result = run_once(benchmark, run_fig3, scale=0.1, seed=0, probes=10)
    attach_report(benchmark, result)

    for name, series in result.series.items():
        assert series[-1][1] >= series[0][1], name

    ideal = dict(result.series["Ideal upper bound"])
    for name, series in result.series.items():
        if name == "Ideal upper bound":
            continue
        for day, value in series:
            assert value <= ideal[day] + 0.02, (name, day)

    gap_k10 = result.final_gap_to_ideal("HyRec k=10")
    assert gap_k10 <= 0.25  # paper: within 20% at full scale
    gap_ir = result.final_gap_to_ideal("HyRec k=10 IR=7")
    assert gap_ir <= gap_k10 + 0.05
    benchmark.extra_info["final_gap_k10"] = round(gap_k10, 4)
    benchmark.extra_info["final_gap_ir7"] = round(gap_ir, 4)
