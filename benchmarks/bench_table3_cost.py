"""Bench T3 -- regenerate Table 3 (HyRec cost reduction on EC2).

Two modes are exercised:

* paper-calibrated back-end wall-clock times -> the printed cells must
  match the paper's (8.6%...49.2%);
* measured mode -> the real Offline-CRec back-end is run on scaled
  workloads and its time extrapolated; cells must keep the paper's
  orderings (more frequent KNN and bigger datasets save more, capped
  at the reserved-instance bound of 49.2%).
"""

import pytest
from conftest import attach_report, run_once

from repro.eval.table3 import run_table3


def test_table3_paper_calibrated(benchmark):
    result = run_once(benchmark, run_table3, mode="paper-calibrated")
    attach_report(benchmark, result)

    expected = {
        "ML1": [0.086, 0.158, 0.274],
        "ML2": [0.310, 0.476, 0.492],
        "ML3": [0.492, 0.492, 0.492],
    }
    for dataset, cells in expected.items():
        for measured, paper in zip(result.reductions[dataset], cells):
            assert measured == pytest.approx(paper, abs=0.006)
    benchmark.extra_info["ml1_cells"] = [
        round(v, 3) for v in result.reductions["ML1"]
    ]


def test_table3_measured(benchmark):
    result = run_once(
        benchmark,
        run_table3,
        mode="measured",
        scale=0.02,
        seed=0,
        names=["ML1", "ML2", "Digg"],
    )
    attach_report(benchmark, result)

    for dataset, cells in result.reductions.items():
        assert all(0.0 <= value <= 0.4921 for value in cells)
        assert cells == sorted(cells)  # shorter period -> bigger saving
    # Bigger dataset -> bigger saving at equal period (ML2 vs ML1).
    assert result.reductions["ML2"][0] >= result.reductions["ML1"][0]
