"""Bench A5 -- churn ablation (Section 2.4's architectural claim).

"HyRec allows clients to have offline users within their KNN, thus
leveraging clients that are not concurrently online."  Under the same
on/off pattern:

* the P2P overlay's neighborhood quality must degrade monotonically
  with the per-cycle leave rate (unreachable peers get evicted);
* HyRec's server-side KNN table must stay essentially unaffected.
"""

from conftest import attach_report, run_once

from repro.eval.churn import run_churn_ablation


def test_churn_ablation(benchmark):
    result = run_once(
        benchmark,
        run_churn_ablation,
        scale=0.05,
        seed=0,
        leave_rates=(0.0, 0.2, 0.4),
    )
    attach_report(benchmark, result)

    levels = sorted(result.p2p)
    # P2P: monotone degradation with churn.
    p2p_values = [result.p2p[level] for level in levels]
    assert p2p_values == sorted(p2p_values, reverse=True)
    assert result.degradation("p2p") > 0.10

    # HyRec: flat within noise.
    assert result.degradation("hyrec") < 0.05
    for level in levels:
        # At zero churn both systems converge to the same quality (tie
        # within noise); under churn HyRec must clearly dominate.
        slack = 0.005 if level == 0.0 else 0.0
        assert result.hyrec[level] >= result.p2p[level] - slack, level

    benchmark.extra_info["p2p_degradation"] = round(result.degradation("p2p"), 3)
    benchmark.extra_info["hyrec_degradation"] = round(
        result.degradation("hyrec"), 3
    )
