"""Bench F13 -- regenerate Figure 13 (widget time vs profile size).

Paper shapes to check:

* from profile size 10 to 500, widget time grows by less than x1.5 on
  the laptop and about x7.2 on the smartphone;
* k=20 jobs cost more than k=10 jobs at every profile size;
* the widget also *actually runs* each job here, confirming the real
  Python execution stays well within interactive budgets.
"""

import time

from conftest import attach_report, run_once

from repro.core.client import HyRecWidget
from repro.eval.fig11_13 import run_fig13, synth_job


def test_fig13_profile_size_sweep(benchmark):
    result = run_once(
        benchmark, run_fig13, profile_sizes=(10, 50, 100, 250, 500), ks=(10, 20)
    )
    attach_report(benchmark, result)

    assert result.growth_factor("laptop k=10") < 1.55
    assert 6.0 < result.growth_factor("smartphone k=10") < 8.5
    for device in ("laptop", "smartphone"):
        for ps in result.profile_sizes:
            assert (
                result.times_ms[f"{device} k=20"][ps]
                > result.times_ms[f"{device} k=10"][ps]
            )

    # Ground truth: really execute the ps=500, k=10 job once.
    widget = HyRecWidget()
    job = synth_job(500, k=10, seed=0)
    start = time.perf_counter()
    widget.process_job(job)
    real_ms = (time.perf_counter() - start) * 1e3
    print(f"\nreal widget execution at ps=500/k=10: {real_ms:.1f}ms")
    assert real_ms < 2000.0  # interactive even in pure Python

    benchmark.extra_info["laptop_growth"] = round(
        result.growth_factor("laptop k=10"), 2
    )
    benchmark.extra_info["smartphone_growth"] = round(
        result.growth_factor("smartphone k=10"), 2
    )
    benchmark.extra_info["real_python_ms_ps500"] = round(real_ms, 1)
