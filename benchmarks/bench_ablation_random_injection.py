"""Bench A1/A2 -- sampler-component ablation.

DESIGN.md's claims under test:

* dropping the k random users (A1) removes the escape from local
  optima: final view similarity must not beat the full sampler's;
* dropping the two-hop component (A2) slows the epidemic search:
  again no better than the full sampler;
* the full sampler is the best variant overall, and random-only is
  the weakest informed variant.
"""

from conftest import attach_report, run_once

from repro.eval.ablations import run_sampler_ablation


def test_sampler_component_ablation(benchmark):
    result = run_once(benchmark, run_sampler_ablation, scale=0.1, seed=0)
    attach_report(benchmark, result)

    full = result.view_similarity["full (2-hop + random)"]
    no_random = result.view_similarity["no random injection"]
    no_two_hop = result.view_similarity["no two-hop"]
    random_only = result.view_similarity["random only"]

    assert full > 0
    assert full <= result.ideal + 1e-9
    for name, value in result.view_similarity.items():
        assert value <= full * 1.02, name  # nothing beats the full recipe
    # Both components carry weight: the crippled variants lose measurably.
    assert min(no_random, no_two_hop, random_only) < full * 0.98

    benchmark.extra_info["view_similarity"] = {
        name: round(value, 4) for name, value in result.view_similarity.items()
    }
    benchmark.extra_info["ideal"] = round(result.ideal, 4)
