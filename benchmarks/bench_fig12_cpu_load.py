"""Bench F12 -- regenerate Figure 12 (widget time vs client CPU load).

Paper shapes to check (at profile size 100):

* under 10ms on the laptop and under 60ms on the smartphone at 50%
  CPU load;
* the laptop's time grows only slowly with load;
* the smartphone is slower than the laptop everywhere.

Driven by the real operation count of a real personalization job on
the calibrated device models.
"""

from conftest import attach_report, run_once

from repro.eval.fig11_13 import run_fig12


def test_fig12_cpu_load_sweep(benchmark):
    result = run_once(
        benchmark, run_fig12, loads=(0.0, 0.25, 0.5, 0.75, 1.0), profile_size=100
    )
    attach_report(benchmark, result)

    laptop = result.times_ms["laptop"]
    smartphone = result.times_ms["smartphone"]

    assert laptop[2] < 10.0  # 50% load
    assert smartphone[2] < 60.0  # 50% load
    assert laptop[-1] / laptop[0] < 1.35  # gentle slope
    for fast, slow in zip(laptop, smartphone):
        assert slow > fast

    benchmark.extra_info["laptop_ms_at_50"] = round(laptop[2], 2)
    benchmark.extra_info["smartphone_ms_at_50"] = round(smartphone[2], 2)
