"""Bench X1 -- Section 5.6's bandwidth headline (P2P vs HyRec, Digg).

Paper shape to check: a P2P node spends megabytes over the two-week
Digg trace (the paper measures ~24MB) while a HyRec widget spends
kilobytes (~8kB) -- two to three orders of magnitude apart, because
gossip never stops while HyRec only talks when its user shows up.
"""

from conftest import attach_report, run_once

from repro.eval.p2p_bandwidth import run_p2p_bandwidth


def test_p2p_vs_hyrec_bandwidth(benchmark):
    result = run_once(
        benchmark, run_p2p_bandwidth, scale=0.005, seed=0, measured_cycles=20
    )
    attach_report(benchmark, result)

    # Orders of magnitude: MBs vs tens of kBs per node.
    assert result.p2p_bytes_per_node > 1_000_000
    assert result.hyrec_bytes_per_widget < 200_000
    assert result.ratio < 0.02  # paper: ~0.0003

    benchmark.extra_info["p2p_mb_per_node"] = round(
        result.p2p_bytes_per_node / 1e6, 1
    )
    benchmark.extra_info["hyrec_kb_per_widget"] = round(
        result.hyrec_bytes_per_widget / 1e3, 1
    )
    benchmark.extra_info["hyrec_over_p2p"] = round(result.ratio, 5)
