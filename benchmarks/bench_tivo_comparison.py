"""Bench A6 -- TiVo vs HyRec on dynamic data (Section 2.4, measured).

Shapes under test:

* on the Digg news workload, TiVo at its native two-week correlation
  period is structurally broken (items born after the last run cannot
  be recommended) while HyRec keeps hitting;
* shortening TiVo's period to a day recovers much of the gap, which
  is exactly the cost HyRec avoids (Table 3 prices that back-end);
* on slow-moving MovieLens the architectures are both viable -- the
  dynamic workload is what separates them.
"""

from conftest import attach_report, run_once

from repro.eval.tivo_comparison import run_tivo_comparison


def test_tivo_vs_hyrec(benchmark):
    result = run_once(
        benchmark,
        run_tivo_comparison,
        scales={"Digg": 0.008, "ML1": 0.06},
        seed=0,
    )
    attach_report(benchmark, result)

    # Digg: HyRec must crush biweekly TiVo.
    hyrec_digg = result.quality("Digg", "HyRec")
    tivo2w_digg = result.quality("Digg", "TiVo p=2w")
    tivo24_digg = result.quality("Digg", "TiVo p=24h")
    assert hyrec_digg > 5 * max(1, tivo2w_digg)
    # A daily period recovers much of the gap...
    assert tivo24_digg > tivo2w_digg
    # ...but still does not beat the always-fresh hybrid.
    assert hyrec_digg >= tivo24_digg * 0.9

    # MovieLens: both architectures work; TiVo is allowed to win
    # (item-based CF is strong on slow catalogs).
    hyrec_ml = result.quality("ML1", "HyRec")
    tivo24_ml = result.quality("ML1", "TiVo p=24h")
    assert hyrec_ml > 0 and tivo24_ml > 0

    benchmark.extra_info["digg_hits"] = {
        "hyrec": hyrec_digg,
        "tivo_2w": tivo2w_digg,
        "tivo_24h": tivo24_digg,
    }
