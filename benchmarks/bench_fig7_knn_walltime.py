"""Bench F7 -- regenerate Figure 7 (offline KNN back-end wall-clock).

Paper shapes to check:

* Offline-CRec is the fastest back-end on (almost) every workload --
  the paper allows one exception (ClusMahout on the smallest set);
* the exhaustive all-pairs pass is the slowest on the larger sets;
* ClusMahout (2 nodes) is at least as fast as MahoutSingle (1 node);
* the Exhaustive/CRec gap grows with dataset size.
"""

from conftest import attach_report, run_once

from repro.eval.fig7 import run_fig7

#: Per-workload scales keeping Table 2's size ordering laptop-sized
#: while putting every workload past the quadratic/linear crossover.
SCALES = {"ML1": 0.8, "ML2": 0.16, "ML3": 0.018, "Digg": 0.025}


def test_fig7_backend_walltimes(benchmark):
    result = run_once(benchmark, run_fig7, scales=SCALES, seed=0, k=10)
    attach_report(benchmark, result)

    for dataset, walltimes in result.walltimes.items():
        assert walltimes["ClusMahout"] <= walltimes["MahoutSingle"] * 1.1, dataset

    # CRec is the fastest back-end on the larger workloads (the paper
    # allows one exception, on its smallest dataset).
    by_users = sorted(result.users, key=result.users.get)
    for dataset in by_users[2:]:
        walltimes = result.walltimes[dataset]
        assert walltimes["CRec"] == min(walltimes.values()), dataset

    # The exhaustive pass loses ground as datasets grow: compare the
    # Exhaustive/CRec ratio on the smallest vs the largest user count.
    small, large = by_users[0], by_users[-1]
    ratio_small = (
        result.walltimes[small]["Exhaustive"] / result.walltimes[small]["CRec"]
    )
    ratio_large = (
        result.walltimes[large]["Exhaustive"] / result.walltimes[large]["CRec"]
    )
    assert ratio_large > ratio_small
    assert ratio_large > 1.0  # exhaustive has lost by the largest set
    benchmark.extra_info["exhaustive_over_crec"] = {
        small: round(ratio_small, 2),
        large: round(ratio_large, 2),
    }
