"""Bench F5 -- regenerate Figure 5 (candidate-set size convergence).

Paper shapes to check: the mean candidate-set size converges well
below the ``2k + k^2`` bound (to ~55 for k=10 at full ML1 scale), and
larger k means larger candidate sets throughout.
"""

from conftest import attach_report, run_once

from repro.eval.fig5 import run_fig5


def test_fig5_candidate_set_convergence(benchmark):
    result = run_once(
        benchmark, run_fig5, scale=0.15, seed=0, ks=(5, 10), buckets=10
    )
    attach_report(benchmark, result)

    for name in ("k=5", "k=10"):
        final = result.final_mean(name)
        bound = result.upper_bounds[name]
        assert 0 < final < bound
    # Larger neighborhoods sample more candidates.
    assert result.final_mean("k=10") > result.final_mean("k=5")
    # Convergence: the final mean sits below the mid-replay peak.
    peak_k10 = max(v for _, v in result.series["k=10"])
    assert result.final_mean("k=10") <= peak_k10
    benchmark.extra_info["final_k10"] = round(result.final_mean("k=10"), 1)
    benchmark.extra_info["bound_k10"] = result.upper_bounds["k=10"]
