"""Bench F8 -- regenerate Figure 8 (front-end response time vs ps).

Paper shapes to check:

* HyRec answers faster than CRec on average, and the gap grows with
  profile size ("this is clearer as the size of profiles increases");
* Online-Ideal is far slower than both (the paper calls it
  inapplicable);
* response time grows with profile size for both front-ends.

All service times here are *measured* executions of the real code
paths (fragment-gzip rendering for HyRec, Algorithm 2 for CRec,
global KNN for Online-Ideal).
"""

from conftest import attach_report, run_once

from repro.eval.fig8_fig9 import run_fig8


def test_fig8_response_time_vs_profile_size(benchmark):
    result = run_once(
        benchmark,
        run_fig8,
        profile_sizes=(10, 100, 500),
        num_users=300,
        requests=120,
        seed=0,
    )
    attach_report(benchmark, result)

    hyrec = result.mean_ms["HyRec k=10"]
    crec = result.mean_ms["CRec k=10"]
    ideal = result.mean_ms["Online Ideal k=10"]

    for mean_by_ps in (hyrec, crec):
        assert mean_by_ps[500] > mean_by_ps[10]

    # HyRec wins on average across profile sizes...
    hyrec_avg = sum(hyrec.values()) / len(hyrec)
    crec_avg = sum(crec.values()) / len(crec)
    assert hyrec_avg < crec_avg
    # ...and decisively at large profiles.
    assert hyrec[500] < crec[500]
    # Online-Ideal is the worst (its margin widens with the user
    # count, which is deliberately small at bench scale).
    assert ideal[500] > 1.3 * crec[500]
    assert ideal[500] > 3.0 * hyrec[500]

    benchmark.extra_info["hyrec_ms"] = {k: round(v, 2) for k, v in hyrec.items()}
    benchmark.extra_info["crec_ms"] = {k: round(v, 2) for k, v in crec.items()}
    benchmark.extra_info["crec_over_hyrec_avg"] = round(crec_avg / hyrec_avg, 2)
