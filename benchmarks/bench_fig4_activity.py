"""Bench F4 -- regenerate Figure 4 (KNN quality vs user activity).

Paper shapes to check: quality correlates with activity (more
iterations -> closer to the ideal), and "the vast majority of users
have view-similarity ratios above 70%".
"""

from conftest import attach_report, run_once

from repro.eval.fig3_fig4 import run_fig4


def test_fig4_activity_correlation(benchmark):
    result = run_once(benchmark, run_fig4, scale=0.1, seed=0)
    attach_report(benchmark, result)

    assert result.points
    # Split users at the median profile size; the active half must be
    # at least as close to the ideal on average.
    sizes = sorted(size for size, _ in result.points)
    median = sizes[len(sizes) // 2]
    low = [ratio for size, ratio in result.points if size < median]
    high = [ratio for size, ratio in result.points if size >= median]
    if low and high:
        assert sum(high) / len(high) >= sum(low) / len(low) - 0.02

    above_70 = result.fraction_above(0.7)
    assert above_70 >= 0.6
    benchmark.extra_info["fraction_above_70pct"] = round(above_70, 3)
