"""Bench F9 -- regenerate Figure 9 (response time vs concurrency).

Paper shapes to check:

* hockey-stick curves: flat below saturation, then (closed-loop)
  linear growth;
* smaller profiles are served faster at every concurrency;
* HyRec sustains at least as much concurrency as CRec at equal
  profile size (the paper's scalability claim, measured via the
  concurrency that keeps mean response under a threshold).

Also reports the Section 5.5 headline: how HyRec at profile size 1000
compares with CRec at profile size 10.
"""

from conftest import attach_report, run_once

from repro.eval.fig8_fig9 import run_fig9, scalability_factor


def test_fig9_concurrency_sweep(benchmark):
    result = run_once(
        benchmark,
        run_fig9,
        concurrencies=(1, 25, 100, 400, 1000),
        profile_sizes=(10, 100),
        num_users=250,
        calibration_requests=80,
        seed=0,
    )
    attach_report(benchmark, result)

    for name, curve in result.curves.items():
        assert curve[-1].mean_response_ms > curve[0].mean_response_ms, name

    for system in ("HyRec", "CRec"):
        small = result.curves[f"{system} ps=10"]
        large = result.curves[f"{system} ps=100"]
        for point_small, point_large in zip(small, large):
            assert point_small.mean_response_s <= point_large.mean_response_s * 1.2

    hyrec_capacity = result.saturation_capacity("HyRec ps=100", 200.0)
    crec_capacity = result.saturation_capacity("CRec ps=100", 200.0)
    assert hyrec_capacity >= crec_capacity

    factors = scalability_factor(num_users=200, requests=50, seed=0)
    print(
        f"\nSection 5.5 claim: HyRec ps=1000 service "
        f"{factors['hyrec_service_ms']:.2f}ms vs CRec ps=10 "
        f"{factors['crec_service_ms']:.2f}ms -> capacity ratio "
        f"{factors['capacity_ratio']:.2f} at a 100x profile-size ratio"
    )
    # Direction of the claim: serving 100x larger profiles must cost
    # far less than 100x the capacity.
    assert factors["capacity_ratio"] * factors["profile_size_ratio"] > 2.0
    benchmark.extra_info["scalability"] = {
        k: round(v, 3) for k, v in factors.items()
    }
