#!/usr/bin/env python3
"""Quickstart: personalize a small movie site with HyRec.

Builds a scaled synthetic MovieLens workload, replays it through the
full hybrid system (server orchestration + widget-side Algorithms 1
and 2), and prints recommendations, neighborhood quality, and what the
whole thing cost in bandwidth.

Run:  python examples/quickstart.py
"""

from repro import HyRecConfig, HyRecSystem, load_dataset
from repro.metrics import format_bytes
from repro.metrics.view_similarity import (
    ideal_view_similarity,
    view_similarity_of_table,
)


def main() -> None:
    # A ~100-user MovieLens-shaped trace (Table 2's ML1 at 10% scale).
    trace = load_dataset("ML1", scale=0.1, seed=42)
    print(f"workload: {trace}")

    # The full hybrid system: k nearest neighbors, 5 recommendations
    # per request, cosine similarity in the widget.
    system = HyRecSystem(HyRecConfig(k=10, r=5), seed=42)
    system.replay(trace)
    print(f"replayed {system.requests_served:,} personalization requests")

    # Ask for fresh recommendations for a few users.
    for user_id in sorted(trace.users)[:3]:
        items = system.recommend(user_id, n=5)
        print(f"user {user_id:>3}: recommended items {items}")

    # How close did the browser-side KNN selection get to the ideal?
    liked = system.server.profiles.liked_sets()
    achieved = view_similarity_of_table(
        liked, system.server.knn_table.as_dict()
    )
    ideal = ideal_view_similarity(liked, k=10)
    print(
        f"view similarity: {achieved:.4f} achieved vs {ideal:.4f} ideal "
        f"({100 * achieved / ideal:.1f}% of the global-knowledge bound)"
    )

    # And what it cost on the wire (gzipped JSON, both directions).
    meter = system.server.meter
    down = meter.reading("server->client")
    up = meter.reading("client->server")
    users = max(1, len(trace.users))
    print(
        f"traffic: {format_bytes(down.wire_bytes)} down "
        f"(+{format_bytes(up.wire_bytes)} up) total; "
        f"{format_bytes(meter.total_wire_bytes / users)} per widget; "
        f"gzip saved {down.compression_ratio:.0%}"
    )


if __name__ == "__main__":
    main()
