#!/usr/bin/env python3
"""Scale-out sweep: RPS versus shard count for one HyRec deployment.

The COB-Service scalability experiment, in-process: take one synthetic
population, serve the same closed-loop request load from deployments
with 1, 2, 4 and 8 shards (``HyRecConfig(engine="sharded")``), and
compare measured throughput and latency -- "scaling the backend"
without docker-compose.  Every deployment returns bit-for-bit the same
recommendations; only the serving topology changes.

Run:  PYTHONPATH=src python examples/sharded_scaleout.py [--quick]
"""

import argparse

from repro import HyRecConfig, HyRecSystem
from repro.sim.loadgen import ClusterLoadGenerator
from repro.sim.randomness import derive_rng


def build_population(
    num_shards: int,
    executor: str,
    num_users: int,
    profile_size: int,
    k: int = 20,
    seed: int = 7,
) -> HyRecSystem:
    """One deployment, preloaded with a worst-case candidate topology."""
    rng = derive_rng(seed, "scaleout-population")
    catalog = max(1000, 10 * profile_size)
    system = HyRecSystem(
        HyRecConfig(
            k=k,
            r=10,
            compress=False,
            engine="sharded",
            num_shards=num_shards,
            executor=executor,
            batch_window=32,
        ),
        seed=seed,
    )
    for user in range(num_users):
        for item in rng.sample(range(catalog), profile_size):
            system.record_rating(user, item, 1.0 if rng.random() < 0.8 else 0.0)
    users = list(range(num_users))
    for user in users:
        neighbors = [n for n in rng.sample(users, k + 1) if n != user][:k]
        system.server.knn_table.update(user, neighbors)
    return system


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller sweep")
    parser.add_argument(
        "--executor",
        default="thread",
        choices=("serial", "thread", "process"),
        help="process = one worker process per shard over the "
        "serialized shard transport (real multi-core parallelism)",
    )
    args = parser.parse_args()

    num_users = 200 if args.quick else 600
    profile_size = 80 if args.quick else 150
    requests = 128 if args.quick else 384
    concurrency = 32

    print(
        f"population: {num_users} users, profile size {profile_size}; "
        f"load: {requests} requests at concurrency {concurrency} "
        f"({args.executor} executor)\n"
    )

    results = []
    for num_shards in (1, 2, 4, 8):
        system = build_population(
            num_shards, args.executor, num_users, profile_size
        )
        generator = ClusterLoadGenerator(system, list(range(num_users)))
        generator.run(requests=min(64, requests), concurrency=concurrency)
        load = generator.run(requests=requests, concurrency=concurrency)
        results.append((num_shards, load))
        stats = system.server.stats.shards
        spread = f"{min(s.users for s in stats)}-{max(s.users for s in stats)}"
        print(
            f"shards={num_shards}:  {load.throughput_rps:8.1f} rps   "
            f"mean {load.mean_response_ms:7.2f}ms   "
            f"p95 {load.p95_response_s * 1e3:7.2f}ms   "
            f"(users/shard {spread})"
        )
        system.close()

    base = results[0][1].throughput_rps
    best_shards, best = max(results, key=lambda entry: entry[1].throughput_rps)
    print(
        f"\n{best_shards} shards sustained "
        f"{100 * (best.throughput_rps - base) / base:+.1f}% throughput "
        f"vs the single shard"
    )
    if best.throughput_rps > base:
        print("the deployment scales with shards on this host")
    else:
        print(
            "no headroom on this host (single-core?) -- "
            "the thread-pool executor needs cores to overlap shard tasks"
        )


if __name__ == "__main__":
    main()
