#!/usr/bin/env python3
"""Fully decentralized vs hybrid: the bandwidth trade-off.

Runs the same Digg-shaped workload through (a) a genuine P2P
recommender -- gossip peer sampling plus epidemic KNN clustering on
every "user machine" -- and (b) HyRec.  Both end up with comparable
neighborhoods, but the P2P overlay pays for them with continuous
profile exchanges every minute, while HyRec widgets only talk when
their user shows up (Section 5.6).

Run:  python examples/p2p_vs_hybrid.py [scale]
"""

import sys

from repro import HyRecConfig, HyRecSystem, load_dataset
from repro.baselines import P2PRecommender
from repro.metrics import format_bytes
from repro.metrics.view_similarity import (
    ideal_view_similarity,
    view_similarity_of_table,
)


def main(scale: float = 0.006) -> None:
    trace = load_dataset("Digg", scale=scale, seed=3)
    print(f"workload: {trace}\n")

    # --- P2P: every user machine joins the overlay. -------------------
    p2p = P2PRecommender(k=10, seed=3)
    for rating in trace:
        p2p.record_rating(rating.user, rating.item, rating.value, rating.timestamp)
    print(f"P2P overlay: {p2p.num_nodes} machines")
    p2p.run_cycles(5)  # bootstrap
    p2p.reset_traffic()
    measured = 20
    p2p.run_cycles(measured)
    report = p2p.traffic_report(trace.duration)
    print(
        f"  gossip: {measured} cycles measured, "
        f"{format_bytes(report.bytes_per_node_per_cycle)} per node per cycle"
    )
    print(
        f"  full trace ({report.target_cycles:,} one-minute cycles): "
        f"~{format_bytes(report.extrapolated_total_bytes_per_node)} per node"
    )

    # --- HyRec on the same trace. ---------------------------------------
    hyrec = HyRecSystem(HyRecConfig(k=10), seed=3)
    hyrec.replay(trace)
    users = max(1, len(trace.users))
    per_widget = hyrec.server.meter.total_wire_bytes / users
    print(f"\nHyRec: {hyrec.requests_served:,} requests")
    print(f"  {format_bytes(per_widget)} per widget over the whole trace")
    ratio = per_widget / max(1.0, report.extrapolated_total_bytes_per_node)
    print(f"  = {ratio:.2%} of the P2P per-node traffic (paper: ~0.03%)\n")

    # --- Both architectures find real neighborhoods. ----------------------
    liked = {uid: p2p.profiles[uid].liked_items() for uid in p2p.profiles}
    ideal = ideal_view_similarity(liked, k=10)
    p2p_view = view_similarity_of_table(liked, p2p.knn_table())
    hyrec_view = view_similarity_of_table(
        hyrec.server.profiles.liked_sets(), hyrec.server.knn_table.as_dict()
    )
    print(f"view similarity (ideal bound {ideal:.4f}):")
    print(f"  P2P after {p2p.overlay.cycles_run} cycles: {p2p_view:.4f}")
    print(f"  HyRec after replay:                        {hyrec_view:.4f}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.006)
