#!/usr/bin/env python3
"""Personalized news feed on a Digg-shaped workload.

News is the paper's motivating "dynamic" scenario: stories live for a
day or two, profiles are tiny (13 votes on average), and offline KNN
tables rot between recomputations.  This example replays a scaled
Digg trace through HyRec and shows:

* the cost story -- what a centralized back-end would pay on EC2 at
  several KNN periods versus HyRec's front-end-only bill (Table 3);
* the bandwidth story -- per-widget wire bytes on this workload
  (Section 5.6's 8kB figure).

Run:  python examples/digg_news_feed.py [scale]
"""

import sys

from repro import HyRecConfig, HyRecSystem, load_dataset
from repro.baselines.crec import OfflineCRecBackend
from repro.core.tables import ProfileTable
from repro.metrics import format_bytes
from repro.sim.clock import HOUR
from repro.sim.cost import CostModel


def main(scale: float = 0.01) -> None:
    trace = load_dataset("Digg", scale=scale, seed=11)
    stats = trace.stats()
    print(f"workload: {trace}")
    print(f"avg ratings/user: {stats.avg_ratings_per_user:.1f} (paper: 13)\n")

    # --- HyRec replay: profiles, neighborhoods, live recommendations.
    system = HyRecSystem(HyRecConfig(k=10, r=10), seed=11)
    system.replay(trace)
    some_user = next(iter(sorted(trace.users)))
    print(f"sample feed for user {some_user}: {system.recommend(some_user, 5)}")

    users = max(1, len(trace.users))
    per_widget = system.server.meter.total_wire_bytes / users
    print(
        f"traffic: {system.requests_served:,} requests, "
        f"{format_bytes(per_widget)} per widget over the whole trace "
        f"(paper reports ~8kB on full Digg)\n"
    )

    # --- What would the centralized alternative cost?
    profiles = ProfileTable()
    for rating in trace:
        profiles.record(rating.user, rating.item, rating.value, rating.timestamp)
    backend = OfflineCRecBackend(profiles, k=10, seed=11)
    run = backend.recompute()
    # Extrapolate the measured back-end time to full Digg scale
    # (sampling KNN cost is linear in the user count).
    full_scale_s = run.wall_clock_s * (59_167 / max(1, len(profiles)))
    print(
        f"one Offline-CRec KNN pass: {run.wall_clock_s:.2f}s measured at "
        f"{len(profiles)} users -> ~{full_scale_s:,.0f}s at full Digg scale"
    )

    model = CostModel()
    print(f"{'KNN period':<12} {'centralized $/yr':>17} {'HyRec $/yr':>11} {'saved':>7}")
    for hours in (12, 6, 2):
        centralized = model.centralized_annual_cost(full_scale_s, hours * HOUR)
        hyrec = model.hyrec_annual_cost()
        saved = model.cost_reduction(full_scale_s, hours * HOUR)
        print(
            f"p={hours:>2}h        {centralized:>16.0f}$ {hyrec:>10.0f}$ "
            f"{saved:>6.1%}"
        )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.01)
