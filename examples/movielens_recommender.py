#!/usr/bin/env python3
"""Movie recommender study: HyRec vs offline and online baselines.

Reproduces the heart of the paper's quality story (Sections 5.2-5.3)
on a scaled MovieLens workload:

1. replay the training ratings through HyRec, an Offline-Ideal
   back-end (period 24h) and an Online-Ideal system;
2. score all three with the hit-counting protocol on the 20% test
   tail (Figure 6's metric);
3. compare each system's final neighborhoods against the
   global-knowledge ideal (Figure 3's metric).

Run:  python examples/movielens_recommender.py [scale]
"""

import sys

from repro import HyRecConfig, HyRecSystem, load_dataset, time_split
from repro.baselines import CentralizedOfflineSystem, OnlineIdealSystem
from repro.eval.fig6 import CentralizedQualityAdapter, HyRecQualityAdapter
from repro.metrics.recommendation_quality import QualityProtocol
from repro.metrics.view_similarity import (
    ideal_view_similarity,
    view_similarity_of_table,
)
from repro.sim.clock import HOUR


def main(scale: float = 0.08) -> None:
    trace = load_dataset("ML1", scale=scale, seed=7)
    train, test = time_split(trace)
    print(f"workload: {trace}")
    print(f"train: {len(train):,} ratings / test: {len(test):,} ratings\n")

    protocol = QualityProtocol(n_max=10)

    hyrec_system = HyRecSystem(HyRecConfig(k=10, r=10), seed=7)
    hyrec = HyRecQualityAdapter(hyrec_system)
    offline_system = CentralizedOfflineSystem(k=10, r=10, period_s=24 * HOUR)
    offline = CentralizedQualityAdapter(offline_system)
    online_system = OnlineIdealSystem(k=10, r=10)
    online = CentralizedQualityAdapter(online_system)

    print("running the [37] hit-counting protocol on three systems...")
    results = {
        "HyRec": protocol.run(hyrec, train, test),
        "Offline Ideal p=24h": protocol.run(offline, train, test),
        "Online Ideal": protocol.run(online, train, test),
    }

    print(f"\n{'system':<22} {'hits@1':>7} {'hits@5':>7} {'hits@10':>8}")
    for name, quality in results.items():
        print(
            f"{name:<22} {quality.hits_at[1]:>7} {quality.hits_at[5]:>7} "
            f"{quality.hits_at[10]:>8}"
        )

    # Final neighborhood quality against the ideal bound.
    liked = hyrec_system.server.profiles.liked_sets()
    ideal = ideal_view_similarity(liked, k=10)
    hyrec_view = view_similarity_of_table(
        liked, hyrec_system.server.knn_table.as_dict()
    )
    offline_view = view_similarity_of_table(
        liked, offline_system.backend.knn_table
    )
    print(f"\nview similarity (ideal bound {ideal:.4f}):")
    print(f"  HyRec:   {hyrec_view:.4f} ({100 * hyrec_view / ideal:.1f}% of ideal)")
    print(f"  Offline: {offline_view:.4f} ({100 * offline_view / ideal:.1f}% of ideal)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.08)
