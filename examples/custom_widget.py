#!/usr/bin/env python3
"""Customizing HyRec: your own similarity metric and recommender.

Table 1 of the paper exposes two widget hooks -- ``setSimilarity()``
and ``setRecommendedItems()`` -- so content providers can tune the
personalization without touching the server.  This example builds a
news-style widget that:

* scores neighbors with Jaccard instead of cosine;
* recommends with a *weighted* popularity count (each candidate's
  vote is weighted by similarity instead of counting 1), a common CF
  refinement the paper leaves to content providers.

Run:  python examples/custom_widget.py
"""

from repro import HyRecConfig, load_dataset
from repro.core.client import HyRecWidget
from repro.core.recommend import Recommendation
from repro.core.similarity import jaccard
from repro.core.system import HyRecSystem


def weighted_popularity(user_rated, candidate_liked, r):
    """``setRecommendedItems()``: similarity-weighted Algorithm 2.

    Same signature as :func:`repro.core.recommend.recommend_most_popular`:
    candidate profiles in, ranked recommendations out.
    """
    # Weight each candidate by its Jaccard similarity to the user.
    user_liked = {item for item in user_rated}  # widget-side approximation
    scores: dict[str, float] = {}
    for liked in candidate_liked.values():
        weight = jaccard(user_liked, liked) + 0.1  # floor so new users count
        for item in liked:
            if item not in user_rated:
                scores[item] = scores.get(item, 0.0) + weight
    ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    return [
        Recommendation(item_id=item, popularity=int(score * 100))
        for item, score in ranked[:r]
    ]


def main() -> None:
    trace = load_dataset("Digg", scale=0.005, seed=9)
    print(f"workload: {trace}\n")

    # Standard widget vs customized widget, same server-side config.
    stock = HyRecSystem(HyRecConfig(k=10, r=5, metric="cosine"), seed=9)
    custom = HyRecSystem(HyRecConfig(k=10, r=5, metric="jaccard"), seed=9)
    custom.widget = HyRecWidget(
        similarity=jaccard,  # setSimilarity()
        recommender=weighted_popularity,  # setRecommendedItems()
    )

    stock.replay(trace)
    custom.replay(trace)

    print(f"{'user':>5} {'stock widget':<28} {'custom widget':<28}")
    for uid in sorted(trace.users)[:6]:
        stock_recs = stock.recommend(uid, 4)
        custom_recs = custom.recommend(uid, 4)
        print(f"{uid:>5} {str(stock_recs):<28} {str(custom_recs):<28}")

    print(
        "\nBoth widgets ran the same hybrid protocol -- only the"
        " client-side hooks differ, exactly like re-skinning the paper's"
        " JavaScript widget."
    )


if __name__ == "__main__":
    main()
