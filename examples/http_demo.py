#!/usr/bin/env python3
"""End-to-end HTTP demo: real server, real widgets, real sockets.

Starts the HyRec HTTP server (the paper's Jetty-bundled servlets,
Python edition), loads it with a small workload, then drives a handful
of widget clients through full ``/online`` -> compute -> ``/neighbors``
round trips over localhost -- gzipped JSON and all.

Run:  python examples/http_demo.py
"""

from repro import HyRecConfig, load_dataset
from repro.core.server import HyRecServer
from repro.metrics import format_bytes
from repro.web import HttpWidgetClient, HyRecHttpServer


def main() -> None:
    # Load a server with a small MovieLens-shaped history.
    trace = load_dataset("ML1", scale=0.05, seed=5)
    server = HyRecServer(HyRecConfig(k=10, r=5), seed=5)
    for rating in trace:
        server.record_rating(rating.user, rating.item, rating.value, rating.timestamp)

    http_server = HyRecHttpServer(server)
    port = http_server.start()
    print(f"HyRec server listening on {http_server.url}  (Ctrl-C-free demo)")

    try:
        client = HttpWidgetClient(http_server.url)
        users = sorted(trace.users)[:5]
        # A few rounds so neighborhoods visibly improve.
        for round_number in range(1, 4):
            print(f"\nround {round_number}:")
            for uid in users:
                outcome = client.round_trip(uid)
                top = outcome.recommendations[:5]
                print(
                    f"  user {uid:>3}: {len(outcome.job.candidates):>3} candidates, "
                    f"{format_bytes(outcome.response_bytes)} job -> recs {top}"
                )
        stats = client.stats()
        print(
            f"\nserver stats: {stats['online_requests']} requests, "
            f"{stats['users']} users, "
            f"{format_bytes(stats['wire_bytes'])} total traffic"
        )
    finally:
        http_server.stop()
        print("server stopped.")


if __name__ == "__main__":
    main()
